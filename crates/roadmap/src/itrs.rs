//! ITRS-2000 technology nodes as used by the paper.
//!
//! Every number below is either quoted directly in the paper, quoted from
//! the ITRS 2000 update it cites, or derived from an identity the paper
//! states (each case is documented on the field or constant). The database
//! is deliberately *not* a full ITRS transcription: it carries exactly the
//! parameters the paper's analyses consume.

use np_units::{
    Hertz, MicroampsPerMicron, Microns, Nanometers, SquareMillimeters, Volts, Watts, WattsPerCm2,
};
use std::fmt;

/// The six ITRS technology nodes the paper spans, named by drawn feature
/// size in nanometers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechNode {
    /// 180 nm — "today" in the paper (1999 production).
    N180,
    /// 130 nm (2002).
    N130,
    /// 100 nm (2005).
    N100,
    /// 70 nm (2008) — the first nanometer node.
    N70,
    /// 50 nm (2011).
    N50,
    /// 35 nm (2014) — the end of the roadmap.
    N35,
}

impl TechNode {
    /// All nodes, coarsest first — the order the paper's tables use.
    pub const ALL: [TechNode; 6] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N100,
        TechNode::N70,
        TechNode::N50,
        TechNode::N35,
    ];

    /// The nanometer-regime nodes (drawn feature < 100 nm).
    pub const NANOMETER: [TechNode; 3] = [TechNode::N70, TechNode::N50, TechNode::N35];

    /// Drawn feature size in nanometers.
    pub fn drawn(self) -> Nanometers {
        Nanometers(match self {
            TechNode::N180 => 180.0,
            TechNode::N130 => 130.0,
            TechNode::N100 => 100.0,
            TechNode::N70 => 70.0,
            TechNode::N50 => 50.0,
            TechNode::N35 => 35.0,
        })
    }

    /// ITRS-2000 production year.
    pub fn year(self) -> u32 {
        match self {
            TechNode::N180 => 1999,
            TechNode::N130 => 2002,
            TechNode::N100 => 2005,
            TechNode::N70 => 2008,
            TechNode::N50 => 2011,
            TechNode::N35 => 2014,
        }
    }

    /// The technology parameters of this node.
    pub fn params(self) -> &'static NodeParams {
        &NODE_TABLE[self.index()]
    }

    /// Position of the node in [`TechNode::ALL`].
    pub fn index(self) -> usize {
        match self {
            TechNode::N180 => 0,
            TechNode::N130 => 1,
            TechNode::N100 => 2,
            TechNode::N70 => 3,
            TechNode::N50 => 4,
            TechNode::N35 => 5,
        }
    }

    /// The next (finer) node, or `None` at the end of the roadmap.
    pub fn next(self) -> Option<TechNode> {
        let i = self.index();
        TechNode::ALL.get(i + 1).copied()
    }

    /// Looks a node up by its drawn feature size in nanometers.
    ///
    /// # Examples
    ///
    /// ```
    /// use np_roadmap::TechNode;
    /// assert_eq!(TechNode::from_drawn_nm(70), Some(TechNode::N70));
    /// assert_eq!(TechNode::from_drawn_nm(90), None);
    /// ```
    pub fn from_drawn_nm(nm: u32) -> Option<TechNode> {
        match nm {
            180 => Some(TechNode::N180),
            130 => Some(TechNode::N130),
            100 => Some(TechNode::N100),
            70 => Some(TechNode::N70),
            50 => Some(TechNode::N50),
            35 => Some(TechNode::N35),
            _ => None,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.drawn().0 as u32)
    }
}

/// Per-node technology parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeParams {
    /// The node these parameters describe.
    pub node: TechNode,
    /// Nominal supply voltage. ITRS-2000 high-performance values; the paper
    /// uses 0.9 V at 70 nm, 0.6 V at 50 nm and 35 nm (Sections 3.1, 3.3).
    pub vdd: Volts,
    /// The paper's "more realistic" alternative supply where one is
    /// discussed (0.7 V at 50 nm, Section 3.1 observation 2).
    pub vdd_alt: Option<Volts>,
    /// Physical gate-oxide thickness (equivalent SiO₂). Chosen at the
    /// midpoint of the ITRS range quoted in the paper's Table 1
    /// (100 nm: 12–15 Å, 70 nm: 8–12 Å, 50 nm: 6–8 Å) and so that the
    /// normalized `Cox`/`Coxe` sequences of the paper's Table 2 are
    /// reproduced.
    pub tox_phys: Nanometers,
    /// Effective (as-etched) channel length, per the paper's note on Eq. 2
    /// ("final, as-etched dimension in \[1\]").
    pub leff: Nanometers,
    /// The ITRS saturation drive-current target the paper holds fixed when
    /// solving for `Vth` (750 µA/µm at every node, Table 2).
    pub ion_target: MicroampsPerMicron,
    /// The ITRS off-current projection ("2× per generation", Section 3.1;
    /// the Table 2 row "ITRS Ioff projections").
    pub ioff_itrs: MicroampsPerMicron,
    /// Parasitic source resistance for Eq. 2 in Ω·µm of gate width.
    /// The paper sets this "according to \[1\]"; here it is a calibration
    /// constant (60 Ω·µm) chosen jointly with `leff` so that the solved
    /// `Vth` sequence of Table 2 is reproduced (see DESIGN.md §4).
    pub rs_ohm_um: f64,
    /// Local (datapath) clock frequency, ITRS-2000.
    pub local_clock: Hertz,
    /// Across-chip (global) clock frequency, ITRS-2000. Global signaling in
    /// Section 2.2 is paced by this clock.
    pub global_clock: Hertz,
    /// Maximum power dissipation of a high-performance MPU with heatsink.
    pub max_power: Watts,
    /// High-performance MPU die area at production.
    pub die_area: SquareMillimeters,
    /// Minimum width of the top-level (global) metal, the normalization
    /// basis of the paper's Fig. 5.
    pub top_metal_min_width: Microns,
    /// Top-level metal thickness-to-width aspect ratio.
    pub top_metal_aspect: f64,
    /// Number of wiring levels.
    pub wiring_levels: u8,
}

impl NodeParams {
    /// Chip-average power density `Pchip / Achip` (uniform assumption that
    /// Section 4 then multiplies by the 4× hot-spot factor).
    pub fn average_power_density(&self) -> WattsPerCm2 {
        WattsPerCm2(self.max_power.0 / self.die_area.as_cm2())
    }

    /// Worst-case supply current `Pchip / Vdd`; about 300 A at 35 nm
    /// (Section 4).
    pub fn worst_case_current(&self) -> np_units::Amps {
        self.max_power / self.vdd
    }

    /// The ITRS standby-current allowance: static power limited to 10 % of
    /// `Pchip` (Section 3.1), expressed as a current at `Vdd`.
    ///
    /// About 30 A at 35 nm, as the paper quotes.
    pub fn standby_current_allowance(&self) -> np_units::Amps {
        (self.max_power * 0.1) / self.vdd
    }

    /// Top-level metal sheet resistance, from the copper resistivity
    /// `ρ = 2.2 µΩ·cm` and thickness `aspect × min_width`.
    pub fn top_metal_sheet_resistance(&self) -> np_units::OhmsPerSquare {
        const RHO_CU_OHM_M: f64 = 2.2e-8;
        let thickness_m = self.top_metal_aspect * self.top_metal_min_width.as_meters();
        np_units::OhmsPerSquare(RHO_CU_OHM_M / thickness_m)
    }
}

impl fmt::Display for NodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node: Vdd={:.2}, Tox={:.2}, Leff={:.0}, Ion target={:.0}, ITRS Ioff={:.0} nA/µm",
            self.node,
            self.vdd,
            self.tox_phys,
            self.leff,
            self.ion_target,
            self.ioff_itrs.as_nano_per_micron()
        )
    }
}

/// The node database. Order matches [`TechNode::ALL`].
static NODE_TABLE: [NodeParams; 6] = [
    NodeParams {
        node: TechNode::N180,
        vdd: Volts(1.8),
        vdd_alt: None,
        tox_phys: Nanometers(2.25),
        leff: Nanometers(140.0),
        ion_target: MicroampsPerMicron(750.0),
        ioff_itrs: MicroampsPerMicron(0.007),
        rs_ohm_um: 60.0,
        local_clock: Hertz(1.25e9),
        global_clock: Hertz(1.2e9),
        max_power: Watts(90.0),
        die_area: SquareMillimeters(310.0),
        top_metal_min_width: Microns(0.80),
        top_metal_aspect: 2.0,
        wiring_levels: 6,
    },
    NodeParams {
        node: TechNode::N130,
        vdd: Volts(1.5),
        vdd_alt: None,
        tox_phys: Nanometers(1.70),
        leff: Nanometers(110.0),
        ion_target: MicroampsPerMicron(750.0),
        ioff_itrs: MicroampsPerMicron(0.010),
        rs_ohm_um: 60.0,
        local_clock: Hertz(2.1e9),
        global_clock: Hertz(1.6e9),
        max_power: Watts(130.0),
        die_area: SquareMillimeters(340.0),
        top_metal_min_width: Microns(0.65),
        top_metal_aspect: 2.0,
        wiring_levels: 7,
    },
    NodeParams {
        node: TechNode::N100,
        vdd: Volts(1.2),
        vdd_alt: None,
        tox_phys: Nanometers(1.35),
        leff: Nanometers(80.0),
        ion_target: MicroampsPerMicron(750.0),
        ioff_itrs: MicroampsPerMicron(0.016),
        rs_ohm_um: 60.0,
        local_clock: Hertz(3.5e9),
        global_clock: Hertz(2.0e9),
        max_power: Watts(160.0),
        die_area: SquareMillimeters(385.0),
        top_metal_min_width: Microns(0.50),
        top_metal_aspect: 2.0,
        wiring_levels: 7,
    },
    NodeParams {
        node: TechNode::N70,
        vdd: Volts(0.9),
        vdd_alt: None,
        tox_phys: Nanometers(1.08),
        leff: Nanometers(52.0),
        ion_target: MicroampsPerMicron(750.0),
        ioff_itrs: MicroampsPerMicron(0.040),
        rs_ohm_um: 60.0,
        local_clock: Hertz(6.0e9),
        global_clock: Hertz(2.5e9),
        max_power: Watts(170.0),
        die_area: SquareMillimeters(430.0),
        top_metal_min_width: Microns(0.40),
        top_metal_aspect: 2.0,
        wiring_levels: 8,
    },
    NodeParams {
        node: TechNode::N50,
        vdd: Volts(0.6),
        vdd_alt: Some(Volts(0.7)),
        tox_phys: Nanometers(0.72),
        leff: Nanometers(34.0),
        ion_target: MicroampsPerMicron(750.0),
        ioff_itrs: MicroampsPerMicron(0.080),
        rs_ohm_um: 60.0,
        local_clock: Hertz(10.0e9),
        global_clock: Hertz(3.0e9),
        max_power: Watts(175.0),
        die_area: SquareMillimeters(487.0),
        top_metal_min_width: Microns(0.32),
        top_metal_aspect: 2.0,
        wiring_levels: 9,
    },
    NodeParams {
        node: TechNode::N35,
        vdd: Volts(0.6),
        vdd_alt: None,
        tox_phys: Nanometers(0.54),
        leff: Nanometers(23.0),
        ion_target: MicroampsPerMicron(750.0),
        ioff_itrs: MicroampsPerMicron(0.160),
        rs_ohm_um: 60.0,
        local_clock: Hertz(13.5e9),
        global_clock: Hertz(3.6e9),
        max_power: Watts(183.0),
        die_area: SquareMillimeters(560.0),
        top_metal_min_width: Microns(0.25),
        top_metal_aspect: 2.0,
        wiring_levels: 9,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_in_order() {
        let drawn: Vec<f64> = TechNode::ALL.iter().map(|n| n.drawn().0).collect();
        assert_eq!(drawn, vec![180.0, 130.0, 100.0, 70.0, 50.0, 35.0]);
        for w in TechNode::ALL.windows(2) {
            assert!(w[0].year() < w[1].year());
        }
    }

    #[test]
    fn index_round_trip() {
        for (i, n) in TechNode::ALL.iter().enumerate() {
            assert_eq!(n.index(), i);
            assert_eq!(n.params().node, *n);
        }
    }

    #[test]
    fn from_drawn_round_trip() {
        for n in TechNode::ALL {
            assert_eq!(TechNode::from_drawn_nm(n.drawn().0 as u32), Some(n));
        }
        assert_eq!(TechNode::from_drawn_nm(250), None);
    }

    #[test]
    fn next_walks_the_roadmap() {
        assert_eq!(TechNode::N180.next(), Some(TechNode::N130));
        assert_eq!(TechNode::N35.next(), None);
    }

    #[test]
    fn nanometer_nodes_are_sub_100nm() {
        for n in TechNode::NANOMETER {
            assert!(n.drawn().0 < 100.0);
        }
    }

    #[test]
    fn ioff_doubles_per_generation() {
        // Section 3.1: "The ITRS predicts an increase in MOSFET off current
        // by a factor of 2 per generation" (we allow the 100->70 step,
        // where the ITRS jumps 2.5x, as the paper's own table does).
        for w in TechNode::ALL.windows(2) {
            let ratio = w[1].params().ioff_itrs / w[0].params().ioff_itrs;
            assert!((1.4..=2.6).contains(&ratio), "ratio {ratio} out of band");
        }
        // Full-roadmap increase is the paper's "23X" (Section 3.1 obs. 3).
        let total = TechNode::N35.params().ioff_itrs / TechNode::N180.params().ioff_itrs;
        assert!((20.0..=25.0).contains(&total));
    }

    #[test]
    fn worst_case_current_at_35nm_is_about_300a() {
        // Section 4: "the worst-case current draw of 300A in such a design".
        let i = TechNode::N35.params().worst_case_current();
        assert!((i.0 - 305.0).abs() < 10.0, "got {i}");
    }

    #[test]
    fn standby_allowance_at_35nm_is_about_30a() {
        // Section 3.1: "at 35 nm, an MPU can draw 30A of current in standby".
        let i = TechNode::N35.params().standby_current_allowance();
        assert!((i.0 - 30.5).abs() < 1.0, "got {i}");
    }

    #[test]
    fn vdd_is_monotone_nonincreasing() {
        for w in TechNode::ALL.windows(2) {
            assert!(w[1].params().vdd <= w[0].params().vdd);
        }
    }

    #[test]
    fn only_50nm_has_alternative_supply() {
        for n in TechNode::ALL {
            let alt = n.params().vdd_alt;
            if n == TechNode::N50 {
                assert_eq!(alt, Some(Volts(0.7)));
            } else {
                assert_eq!(alt, None);
            }
        }
    }

    #[test]
    fn power_density_falls_from_50_to_35() {
        // Section 4 footnote 9: "a reduction in power density at 35 nm ...
        // total power at 50 nm increases only slightly while the area jumps
        // 15%".
        let d50 = TechNode::N50.params().average_power_density();
        let d35 = TechNode::N35.params().average_power_density();
        assert!(d35 < d50);
        let area_jump = TechNode::N35.params().die_area / TechNode::N50.params().die_area;
        assert!((area_jump - 1.15).abs() < 0.01);
    }

    #[test]
    fn cox_normalization_matches_table2_shape() {
        // Table 2 rows "Coxe (normalized)" ~ {1, 1.23, 1.45, 1.68, 2.13,
        // 2.46} and "Cox (physical)" ~ {1, 1.32, 1.67, 2.08, 3.13, 4.17}.
        // Electrical oxide adds ~0.7 nm (Section 3.1 obs. 1).
        let t180 = TechNode::N180.params().tox_phys.0;
        let expect_cox = [1.0, 1.32, 1.67, 2.08, 3.13, 4.17];
        let expect_coxe = [1.0, 1.23, 1.45, 1.68, 2.13, 2.46];
        for (i, n) in TechNode::ALL.iter().enumerate() {
            let tox = n.params().tox_phys.0;
            let cox = t180 / tox;
            let coxe = (t180 + 0.7) / (tox + 0.7);
            assert!(
                (cox - expect_cox[i]).abs() / expect_cox[i] < 0.07,
                "{n}: Cox {cox:.2} vs paper {}",
                expect_cox[i]
            );
            assert!(
                (coxe - expect_coxe[i]).abs() / expect_coxe[i] < 0.07,
                "{n}: Coxe {coxe:.2} vs paper {}",
                expect_coxe[i]
            );
        }
    }

    #[test]
    fn sheet_resistance_is_sane() {
        let rs = TechNode::N180.params().top_metal_sheet_resistance();
        assert!(rs.0 > 0.005 && rs.0 < 0.05, "got {rs}");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TechNode::N70), "70 nm");
        let s = format!("{}", TechNode::N50.params());
        assert!(s.contains("50 nm"));
        assert!(s.contains("Ion target"));
    }
}
