//! # np-roadmap
//!
//! The slice of the ITRS 2000 update that *Future Performance Challenges in
//! Nanometer Design* (Sylvester & Kaul, DAC 2001) consumes, encoded as a
//! queryable database, together with the paper's Table 1 survey of published
//! NMOS device results.
//!
//! Three modules:
//!
//! * [`itrs`] — per-node technology parameters (supply, oxide, gate length,
//!   on/off-current targets, clocks, power, die area) for the six nodes
//!   180 nm → 35 nm.
//! * [`survey`] — the published-device dataset of the paper's Table 1.
//! * [`packaging`] — thermal (θja) and flip-chip (bump pitch / pad count)
//!   projections used by the thermal and power-distribution analyses.
//!
//! # Examples
//!
//! ```
//! use np_roadmap::itrs::TechNode;
//!
//! let n35 = TechNode::N35.params();
//! assert_eq!(n35.vdd.0, 0.6);
//! // Standby-current headroom quoted in the paper's Section 3.1:
//! // 10% of Pchip at 0.6 V is about 30 A.
//! let standby = 0.1 * n35.max_power.0 / n35.vdd.0;
//! assert!((standby - 30.5).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod interp;
pub mod itrs;
pub mod packaging;
pub mod survey;

pub use itrs::{NodeParams, TechNode};
pub use packaging::PackagingRoadmap;
pub use survey::{DeviceReport, GateStack, SURVEY};
