//! Integration tests for the public API redesign: the parallel engine
//! driving real model work through the validating `ChipBuilder`, with
//! every failure mode expressed as the unified `nanopower::Error`.

use nanopower::engine::{self, Job, Session};
use nanopower::roadmap::TechNode;
use nanopower::{Chip, Error};

fn power_jobs() -> Vec<Job> {
    TechNode::ALL
        .iter()
        .map(|&node| {
            Job::new(format!("budget-{node}"), move || {
                let chip = Chip::builder(node)
                    .activity(0.1)
                    .effective_fraction(0.75)
                    .build()?;
                Ok(chip.power_budget()?.to_string())
            })
        })
        .collect()
}

#[test]
fn engine_runs_chip_scenarios_deterministically_across_worker_counts() {
    let serial = Session::new(power_jobs()).workers(1).run();
    let parallel = Session::new(power_jobs()).workers(3).run();
    assert!(serial.all_ok(), "{}", serial.error_summary());
    assert_eq!(serial.records.len(), TechNode::ALL.len());
    let texts = |r: &engine::RunReport| -> Vec<String> {
        r.records
            .iter()
            .map(|rec| rec.outcome.clone().unwrap())
            .collect()
    };
    assert_eq!(texts(&serial), texts(&parallel));
    // Submission order is preserved no matter which worker ran what.
    for (record, node) in parallel.records.iter().zip(TechNode::ALL) {
        assert_eq!(record.name, format!("budget-{node}"));
        assert!(record.worker < parallel.workers);
    }
}

#[test]
fn builder_failures_flow_through_the_engine_as_typed_errors() {
    let jobs = vec![
        Job::new("good", || {
            Ok(Chip::builder(TechNode::N100)
                .build()?
                .power_budget()?
                .to_string())
        }),
        Job::new("bad-activity", || {
            Chip::builder(TechNode::N100).activity(1.5).build()?;
            Ok(String::new())
        }),
    ];
    let report = Session::new(jobs).workers(2).run();
    assert!(!report.all_ok());
    assert_eq!(report.failures().len(), 1);
    let failed = report.failures()[0];
    assert_eq!(failed.name, "bad-activity");
    assert!(matches!(failed.outcome, Err(Error::InvalidParameter(_))));
    assert!(report.error_summary().contains("1 of 2 artifacts failed"));
}

#[test]
fn json_report_round_trips_names_and_statuses() {
    let report = Session::new(power_jobs()).workers(2).run();
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"nanopower-run-report/v1\""));
    for node in TechNode::ALL {
        assert!(json.contains(&format!("\"artifact\": \"budget-{node}\"")));
    }
    assert_eq!(
        json.matches("\"status\": \"ok\"").count(),
        TechNode::ALL.len()
    );
}
