//! Minimal zero-dependency JSON support shared by the crash-safe
//! [`crate::journal`] and the service protocol ([`crate::proto`]).
//!
//! Both modules speak JSON-lines: one self-contained JSON value per
//! line, hand-rolled on the write side (mirroring
//! [`crate::engine::RunReport::to_json`]) and parsed on the read side by
//! the recursive-descent reader here. The grammar is full JSON (nested
//! objects, arrays, strings, numbers, booleans, null) minus only the
//! exotica neither format uses (no `\uXXXX` surrogate pairs); anything
//! trailing the top-level value is rejected so a torn line fused with
//! the next write can never parse silently.
//!
//! The parser sits on the network boundary (every `nanopowerd` request
//! line goes through it), so hostile input must come back as a typed
//! error, never a panic or a crash: nesting is capped at
//! [`MAX_DEPTH`] (bounded recursion — a `[[[[…` flood cannot overflow
//! the stack), numbers that overflow `f64` are rejected instead of
//! becoming `inf`, and unescaped control bytes (including NUL) inside
//! strings are rejected the way the JSON grammar demands.

use std::collections::HashMap;

/// Maximum container nesting the parser accepts. Both line formats top
/// out at three levels; 64 leaves slack for future schemas while keeping
/// the recursion bounded against adversarial `[[[[…` input.
pub(crate) const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(HashMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.is_finite() && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub(crate) fn as_obj(&self) -> Option<&HashMap<String, Json>> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|fields| fields.get(key))
    }
}

/// Parses one complete JSON value from `line`, rejecting trailing bytes.
pub(crate) fn parse(line: &str) -> Result<Json, String> {
    let mut chars = line.char_indices().peekable();
    skip_ws(&mut chars);
    let value = parse_value(&mut chars, 0)?;
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing bytes after the JSON value".into());
    }
    Ok(value)
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        other => Err(format!("expected `{want}`, got {other:?}")),
    }
}

fn parse_value(chars: &mut Chars<'_>, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(chars);
    match chars.peek() {
        Some((_, '"')) => Ok(Json::Str(parse_string(chars)?)),
        Some((_, '{')) => parse_object(chars, depth),
        Some((_, '[')) => parse_array(chars, depth),
        Some((_, 't' | 'f' | 'n')) => {
            let word: String = std::iter::from_fn(|| {
                matches!(chars.peek(), Some((_, c)) if c.is_ascii_alphabetic())
                    .then(|| chars.next().map(|(_, c)| c))
                    .flatten()
            })
            .collect();
            match word.as_str() {
                "true" => Ok(Json::Bool(true)),
                "false" => Ok(Json::Bool(false)),
                "null" => Ok(Json::Null),
                other => Err(format!("unknown literal `{other}`")),
            }
        }
        Some((_, c)) if *c == '-' || c.is_ascii_digit() => {
            let token: String = std::iter::from_fn(|| {
                matches!(
                    chars.peek(),
                    Some((_, c)) if c.is_ascii_digit() || "+-.eE".contains(*c)
                )
                .then(|| chars.next().map(|(_, c)| c))
                .flatten()
            })
            .collect();
            match token.parse::<f64>() {
                // `1e999` parses to infinity; neither line format writes
                // non-finite numbers, so they can only be garbage.
                Ok(n) if n.is_finite() => Ok(Json::Num(n)),
                Ok(_) => Err(format!("number out of range `{token}`")),
                Err(_) => Err(format!("bad number `{token}`")),
            }
        }
        other => Err(format!("unexpected value start {other:?}")),
    }
}

fn parse_object(chars: &mut Chars<'_>, depth: usize) -> Result<Json, String> {
    expect(chars, '{')?;
    let mut fields = HashMap::new();
    skip_ws(chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(chars);
        let key = parse_string(chars)?;
        skip_ws(chars);
        expect(chars, ':')?;
        let value = parse_value(chars, depth + 1)?;
        fields.insert(key, value);
        skip_ws(chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            _ => return Err("expected `,` or `}` after value".into()),
        }
    }
    Ok(Json::Obj(fields))
}

fn parse_array(chars: &mut Chars<'_>, depth: usize) -> Result<Json, String> {
    expect(chars, '[')?;
    let mut items = Vec::new();
    skip_ws(chars);
    if matches!(chars.peek(), Some((_, ']'))) {
        chars.next();
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars, depth + 1)?);
        skip_ws(chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, ']')) => break,
            _ => return Err("expected `,` or `]` in array".into()),
        }
    }
    Ok(Json::Arr(items))
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'u')) => {
                    let hex: String = (0..4)
                        .filter_map(|_| chars.next().map(|(_, c)| c))
                        .collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            // Raw control bytes (NUL included) must arrive escaped; a
            // bare one is framing garbage, not content.
            Some((_, c)) if (c as u32) < 0x20 => {
                return Err(format!("unescaped control character 0x{:02x}", c as u32))
            }
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

/// Escapes a string as a JSON string literal (quotes included) — the
/// one escaper behind the journal and protocol writers.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"run": {"names": ["a", "b"], "csv": false, "deadline_ms": 250}}"#)
            .expect("parses");
        let run = v.get("run").expect("run field");
        let names = run.get("names").and_then(Json::as_arr).expect("names");
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].as_str(), Some("a"));
        assert_eq!(run.get("csv").and_then(Json::as_bool), Some(false));
        assert_eq!(run.get("deadline_ms").and_then(Json::as_u64), Some(250));
    }

    #[test]
    fn rejects_trailing_bytes() {
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse(r#"{"a": 1}{"b": 2}"#).is_err());
    }

    #[test]
    fn round_trips_escapes() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1}";
        let v = parse(&format!("{{\"k\": {}}}", escape(nasty))).expect("parses");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn scalars_and_null() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
        assert!(parse("{").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // One past the cap fails with the typed message…
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let line = format!(
                "{}1{}",
                open.repeat(MAX_DEPTH + 1),
                close.repeat(MAX_DEPTH + 1)
            );
            let err = parse(&line).unwrap_err();
            assert!(err.contains("nesting deeper"), "{err}");
        }
        // …while the cap itself parses.
        let line = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&line).is_ok());
        // A pathological flood (far past the cap, unclosed) fails fast
        // instead of recursing 100k frames deep.
        assert!(parse(&"[".repeat(100_000)).is_err());
    }

    #[test]
    fn huge_numbers_are_rejected_not_infinite() {
        assert!(parse("1e999").unwrap_err().contains("out of range"));
        assert!(parse("-1e999").unwrap_err().contains("out of range"));
        assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
        // Malformed exponent soup stays a typed error.
        assert!(parse("1e+e+e").is_err());
        assert!(parse("--5").is_err());
    }

    #[test]
    fn truncated_and_bad_escapes_are_typed_errors() {
        for line in [
            "\"\\u12",     // \u escape cut mid-hex by a torn line
            "\"\\u12zz\"", // non-hex \u payload
            "\"\\q\"",     // unknown escape
            "\"\\",        // escape cut at the backslash
            "\"\\ud800\"", // lone surrogate is not a char
        ] {
            assert!(parse(line).is_err(), "`{line}` must not parse");
        }
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn raw_control_bytes_in_strings_are_rejected() {
        assert!(parse("\"nul\u{0}byte\"")
            .unwrap_err()
            .contains("control character"));
        assert!(parse("\"tab\there\"").is_err());
        // The escaped forms stay legal — that is what `escape` emits.
        assert_eq!(parse("\"\\u0000\"").unwrap().as_str(), Some("\u{0}"));
        assert_eq!(
            parse(&escape("tab\there").to_string()).unwrap().as_str(),
            Some("tab\there")
        );
    }

    #[test]
    fn garbage_lines_never_panic() {
        // A cheap deterministic fuzz sweep: structured prefixes crossed
        // with hostile suffixes; every combination must return, not
        // panic (the no_panic_props suite re-checks this through the
        // public protocol entry points).
        let prefixes = ["", "{", "[", "{\"k\":", "\"", "-", "1e", "tru", "[1,"];
        let suffixes = [
            "",
            "}",
            "]",
            "\u{0}",
            "\\",
            "\"",
            "9999999999999999999999",
            "1e99999",
            "nul",
            "\u{7f}",
            "{{{{{{",
            "\"\\u",
            ",,",
        ];
        for p in prefixes {
            for s in suffixes {
                let _ = parse(&format!("{p}{s}"));
            }
        }
    }

    #[test]
    fn u64_accessor_rejects_negatives_and_non_numbers() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("\"3\"").unwrap().as_u64(), None);
    }
}
