//! # nanopower
//!
//! A nanometer-design power/performance modeling toolkit — an open-source
//! reproduction of *Future Performance Challenges in Nanometer Design*
//! (D. Sylvester and H. Kaul, DAC 2001).
//!
//! This facade crate re-exports the whole workspace and adds the pieces
//! that tie the models together: the [`chip::Chip`] scenario facade (built
//! via the validating [`chip::ChipBuilder`]), the unified [`error::Error`]
//! type over every model crate's error, the [`engine`] — a parallel,
//! deterministic artifact runner with per-run telemetry, graceful
//! cancellation, and completion hooks used by the `repro` harness — the
//! [`journal`] crash-safe run log that makes interrupted `repro` runs
//! resumable — and the service layer behind the `nanopowerd` daemon: the
//! [`proto`] JSON-lines protocol types, the [`spec`] validated
//! scenario-spec front door for untrusted requests, and the [`service`]
//! building blocks (artifact memo, admission control, panic quarantine,
//! telemetry counters):
//!
//! | crate | paper section | what it models |
//! |---|---|---|
//! | [`units`] | — | typed physical quantities, numerics |
//! | [`roadmap`] | Tables 1–2 inputs | ITRS-2000 nodes, device survey, packaging |
//! | [`device`] | §3.1, Eqs. 2–4 | compact MOSFET I–V and leakage model |
//! | [`circuit`] | §2.3–2.4 | cells, libraries, netlists, STA, power |
//! | [`interconnect`] | §2.2 | wires, repeaters, low-swing signaling |
//! | [`thermal`] | §2.1 | θja, DTM, cooling cost |
//! | [`grid`] | §4 | bump arrays, IR drop, wake-up transients, MCML |
//! | [`opt`] | §2.4, §3.2–3.3 | CVS, dual-Vth, sizing, Vdd/Vth policies |
//!
//! # Quickstart
//!
//! ```
//! # fn main() -> Result<(), nanopower::Error> {
//! use nanopower::chip::Chip;
//! use nanopower::roadmap::TechNode;
//!
//! let chip = Chip::builder(TechNode::N70).activity(0.1).build()?;
//! let budget = chip.power_budget()?;
//! // The ITRS caps static power at 10% of the chip budget (Section 3.1);
//! // the unconstrained projection blows through it.
//! assert!(budget.projected_leakage > budget.static_limit);
//! println!("{budget}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chip;
pub mod engine;
pub mod error;
pub mod journal;
mod jsonio;
pub mod proto;
pub mod report;
pub mod service;
pub mod spec;

pub use np_circuit as circuit;
pub use np_device as device;
pub use np_grid as grid;
pub use np_interconnect as interconnect;
pub use np_opt as opt;
pub use np_roadmap as roadmap;
pub use np_telemetry as telemetry;
pub use np_thermal as thermal;
pub use np_units as units;

pub use chip::{Chip, ChipBuilder};
pub use error::{DriftCell, Error, Result};
