//! The `nanopowerd/v1` JSON-lines wire protocol.
//!
//! The `nanopowerd` daemon and its clients exchange one self-contained
//! JSON value per line over a unix or TCP socket. The server greets each
//! connection with a [`Response::Hello`] header naming the schema, then
//! answers each request line with zero or more streamed
//! [`Response::Record`] lines and exactly one terminal line
//! ([`Response::Report`], [`Response::Stats`], [`Response::Busy`],
//! [`Response::TooExpensive`], [`Response::InvalidSpec`],
//! [`Response::Protocol`], or [`Response::Shutdown`]).
//!
//! Four requests exist:
//!
//! ```text
//! {"run": {"names": ["fig5", "table2"], "csv": false, "deadline_ms": 5000,
//!          "specs": [{"node": 70, "activity": 0.2}]}}
//! {"stats": {}}
//! {"health": {}}
//! {"shutdown": {}}
//! ```
//!
//! A `run` body may carry registry artifact `names`, ad-hoc scenario
//! `specs` ([`crate::spec::ScenarioSpec`]), or both; spec records are
//! named `spec:<digest>`. Because specs are untrusted input, their
//! failure modes are typed separately: a spec that fails validation is
//! answered [`Response::InvalidSpec`] naming the offending field, and a
//! request whose static cost estimate exceeds the daemon's budget is
//! answered [`Response::TooExpensive`] before any work happens.
//!
//! Overload is always answered in band and typed, never by dropping the
//! connection: a full admission queue answers [`Response::Busy`]
//! (retry immediately is pointless, back off), while a queue wait past
//! the daemon's shed budget answers [`Response::Overloaded`] (the
//! request *was* queued, the daemon is saturated — shed load). A
//! malformed line never drops the connection either: the daemon answers
//! with a typed [`Response::Protocol`] error (backed by
//! [`Error::Protocol`]) and keeps reading — and unknown keys inside a
//! `run` body are rejected the same way, so a typo'd `deadlne_ms` can
//! never silently run unbounded. Everything here is
//! hand-rolled JSON over [`crate::engine::RunReport::to_json`]'s idiom —
//! no serialization dependency — parsed by the same recursive-descent
//! reader the crash-safe journal uses.

use crate::engine::JobRecord;
use crate::error::Error;
use crate::jsonio::{self, Json};
use crate::spec::ScenarioSpec;

/// The protocol schema identifier sent in every hello line.
pub const SCHEMA: &str = "nanopowerd/v1";

/// The payload of a `run` request: which artifacts to render, in which
/// form, under what per-request deadline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRequest {
    /// Artifact names to run, in submission order. Unknown names come
    /// back as `error` records, like `repro` treats them.
    pub names: Vec<String>,
    /// Ad-hoc scenario specs to evaluate, validated at parse time.
    /// Their records are named [`ScenarioSpec::job_name`] and run after
    /// the named artifacts, in submission order.
    pub specs: Vec<ScenarioSpec>,
    /// Render the CSV form instead of the text form.
    pub csv: bool,
    /// Per-request wall-clock budget in milliseconds; the daemon wires
    /// it to a [`crate::engine::CancelToken`], so expiry drains
    /// in-flight jobs gracefully and marks the rest `cancelled`.
    pub deadline_ms: Option<u64>,
}

/// One client request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run artifacts and stream their records back.
    Run(RunRequest),
    /// Report the daemon's lifetime counters and cache statistics.
    Stats,
    /// Report readiness, inflight load, memo occupancy, and shed
    /// counters — the supervision endpoint.
    Health,
    /// Ask the daemon to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line. Malformed lines produce
    /// [`Error::Protocol`] with a reason the daemon echoes back; a
    /// malformed scenario spec inside a `run` body produces
    /// [`Error::InvalidSpec`] naming the offending field.
    pub fn parse(line: &str) -> Result<Self, Error> {
        let value = jsonio::parse(line).map_err(|reason| Error::Protocol { reason })?;
        let obj = value.as_obj().ok_or_else(|| Error::Protocol {
            reason: "request must be a JSON object".into(),
        })?;
        let mut keys: Vec<&str> = obj.keys().map(String::as_str).collect();
        keys.sort_unstable();
        match keys.as_slice() {
            ["run"] => {
                let body = &obj["run"];
                let Some(body_obj) = body.as_obj() else {
                    return Err(Error::Protocol {
                        reason: "`run` body must be an object".into(),
                    });
                };
                // Unknown keys are protocol errors, not silent no-ops:
                // a typo'd `deadlne_ms` must never run unbounded.
                let mut body_keys: Vec<&str> = body_obj.keys().map(String::as_str).collect();
                body_keys.sort_unstable();
                for key in body_keys {
                    if !["names", "specs", "csv", "deadline_ms"].contains(&key) {
                        return Err(Error::Protocol {
                            reason: format!(
                                "unknown `run` key `{key}` (allowed: names, specs, csv, deadline_ms)"
                            ),
                        });
                    }
                }
                let names = match body.get("names") {
                    Some(v) => {
                        let items = v.as_arr().ok_or_else(|| Error::Protocol {
                            reason: "`names` must be an array of strings".into(),
                        })?;
                        items
                            .iter()
                            .map(|item| {
                                item.as_str()
                                    .map(str::to_owned)
                                    .ok_or_else(|| Error::Protocol {
                                        reason: "`names` must be an array of strings".into(),
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                    None => Vec::new(),
                };
                let csv = match body.get("csv") {
                    Some(v) => v.as_bool().ok_or_else(|| Error::Protocol {
                        reason: "`csv` must be a boolean".into(),
                    })?,
                    None => false,
                };
                let deadline_ms = match body.get("deadline_ms") {
                    Some(v) => Some(v.as_u64().ok_or_else(|| Error::Protocol {
                        reason: "`deadline_ms` must be a non-negative integer".into(),
                    })?),
                    None => None,
                };
                let specs = match body.get("specs") {
                    Some(v) => {
                        let items = v.as_arr().ok_or_else(|| Error::Protocol {
                            reason: "`specs` must be an array of spec objects".into(),
                        })?;
                        items
                            .iter()
                            .map(ScenarioSpec::from_json)
                            .collect::<Result<Vec<_>, _>>()?
                    }
                    None => Vec::new(),
                };
                Ok(Request::Run(RunRequest {
                    names,
                    specs,
                    csv,
                    deadline_ms,
                }))
            }
            ["stats"] => Ok(Request::Stats),
            ["health"] => Ok(Request::Health),
            ["shutdown"] => Ok(Request::Shutdown),
            [] => Err(Error::Protocol {
                reason: "empty request object".into(),
            }),
            [other, ..] => Err(Error::Protocol {
                reason: format!("unknown request `{other}`"),
            }),
        }
    }

    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::Run(run) => {
                let names: Vec<String> = run.names.iter().map(|n| jsonio::escape(n)).collect();
                let mut body = format!("{{\"names\": [{}], \"csv\": {}", names.join(", "), run.csv);
                if !run.specs.is_empty() {
                    let specs: Vec<String> = run.specs.iter().map(ScenarioSpec::to_json).collect();
                    body.push_str(&format!(", \"specs\": [{}]", specs.join(", ")));
                }
                if let Some(ms) = run.deadline_ms {
                    body.push_str(&format!(", \"deadline_ms\": {ms}"));
                }
                body.push('}');
                format!("{{\"run\": {body}}}")
            }
            Request::Stats => "{\"stats\": {}}".into(),
            Request::Health => "{\"health\": {}}".into(),
            Request::Shutdown => "{\"shutdown\": {}}".into(),
        }
    }
}

/// The per-connection greeting: schema identifier plus how many
/// artifacts the registry serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Number of artifacts in the daemon's registry.
    pub artifacts: usize,
}

/// One streamed per-artifact record: the wire form of a
/// [`JobRecord`], plus whether it was served from the cross-request
/// memo without executing.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMsg {
    /// The artifact's name (`spec:<digest>` for scenario specs).
    pub name: String,
    /// `ok`, `drift`, `cancelled`, `panicked`, or `error`
    /// ([`JobRecord::status`]) — plus `quarantined`, synthesized by the
    /// daemon for a spec rejected from the panic quarantine without
    /// re-executing.
    pub status: String,
    /// Wall-clock milliseconds the job took (0 for memo hits and
    /// cancelled placeholders).
    pub duration_ms: f64,
    /// Whether this record was served from the artifact memo.
    pub memo: bool,
    /// Output size in bytes, on success.
    pub bytes: Option<u64>,
    /// `fnv1a:<16 hex>` output digest, on success — the same digest the
    /// crash-safe journal records.
    pub digest: Option<String>,
    /// The failure message, when the record is not `ok`.
    pub error: Option<String>,
}

impl RecordMsg {
    /// Builds the wire record for an executed (or memo-served) job.
    pub fn from_record(record: &JobRecord, memo: bool) -> Self {
        RecordMsg {
            name: record.name.clone(),
            status: record.status().to_owned(),
            duration_ms: record.duration.as_secs_f64() * 1e3,
            memo,
            bytes: record.outcome.as_ref().ok().map(|s| s.len() as u64),
            digest: record.digest(),
            error: record.outcome.as_ref().err().map(ToString::to_string),
        }
    }
}

/// The terminal line of a `run` response: outcome counts and run-level
/// telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportMsg {
    /// Records that succeeded (executed or memo-served).
    pub ok: u64,
    /// Records that failed (error or drift).
    pub failures: u64,
    /// Records cancelled before starting (deadline expiry).
    pub cancelled: u64,
    /// Records served from the artifact memo without executing.
    pub memo_hits: u64,
    /// Wall-clock milliseconds for the whole request.
    pub total_ms: f64,
    /// Whether the request's deadline cancelled the run.
    pub interrupted: bool,
}

/// The daemon's lifetime counters and cache statistics, answering a
/// `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsMsg {
    /// Requests accepted for execution (admitted past the gate).
    pub accepted: u64,
    /// Requests fully served (report line written).
    pub served: u64,
    /// Records served from the artifact memo.
    pub memo_hits: u64,
    /// Requests whose deadline cancelled the run.
    pub cancelled: u64,
    /// Requests rejected with `busy` by admission control.
    pub rejected: u64,
    /// Requests shed with `overloaded` (queue wait past the budget).
    pub overloaded: u64,
    /// Connections turned away at the max-connections gate.
    pub conn_rejected: u64,
    /// Record writes abandoned at the per-connection write deadline.
    pub write_timeouts: u64,
    /// Malformed request lines answered with a protocol error.
    pub protocol_errors: u64,
    /// Scenario specs rejected at validation with `invalid_spec`.
    pub invalid_specs: u64,
    /// Requests rejected by the static cost gate with `too_expensive`.
    pub too_expensive: u64,
    /// Spec evaluations that panicked (caught, reported `panicked`).
    pub panicked: u64,
    /// Spec records answered straight from the panic quarantine.
    pub quarantined: u64,
    /// Spec digests currently held in the panic quarantine.
    pub quarantine_entries: u64,
    /// Entries currently resident in the artifact memo.
    pub memo_entries: u64,
    /// Approximate bytes resident in the artifact memo.
    pub memo_bytes: u64,
    /// Memo entries evicted by the entry/byte caps.
    pub memo_evictions: u64,
    /// Process-wide shared `MeshCache` hits.
    pub mesh_hits: u64,
    /// Process-wide shared `MeshCache` misses.
    pub mesh_misses: u64,
}

/// The supervision snapshot answering a `health` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthMsg {
    /// Whether the daemon considers itself able to make progress:
    /// false once shutdown begins or when the self-watchdog sees the
    /// oldest inflight request stuck past its threshold.
    pub ready: bool,
    /// Requests currently executing.
    pub inflight: u64,
    /// The daemon's `max_inflight` setting.
    pub capacity: u64,
    /// Milliseconds the oldest inflight request has been executing
    /// (0 when idle) — the watchdog's raw signal.
    pub oldest_inflight_ms: u64,
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Entries currently resident in the artifact memo.
    pub memo_entries: u64,
    /// Approximate bytes resident in the artifact memo.
    pub memo_bytes: u64,
    /// Whether a memo spill file is live (false when unconfigured or
    /// demoted to memory-only by a disk failure).
    pub spill_active: bool,
    /// Requests shed with `overloaded` over the daemon's lifetime.
    pub shed: u64,
    /// Spec digests currently held in the panic quarantine (occupancy
    /// against `--quarantine-max`).
    pub quarantine_entries: u64,
}

/// One server response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The per-connection greeting.
    Hello(Hello),
    /// A streamed per-artifact record.
    Record(RecordMsg),
    /// The terminal line of a `run` response.
    Report(ReportMsg),
    /// The answer to a `stats` request.
    Stats(StatsMsg),
    /// The answer to a `health` request.
    Health(HealthMsg),
    /// Admission control rejected the request: the queue is full.
    Busy {
        /// Requests currently executing.
        inflight: u64,
        /// The daemon's `max_inflight` setting.
        capacity: u64,
    },
    /// The request queued but its admission wait exceeded the daemon's
    /// shed budget — the saturated-daemon signal, distinct from
    /// [`Response::Busy`]'s full-queue rejection.
    Overloaded {
        /// Milliseconds the request waited before being shed.
        waited_ms: u64,
        /// The daemon's configured shed budget in milliseconds.
        budget_ms: u64,
    },
    /// The request's summed spec cost estimate exceeds the daemon's
    /// `--max-spec-cost` budget; rejected before any work, admission,
    /// or memoization happened. The connection stays open.
    TooExpensive {
        /// The request's static work-unit estimate
        /// ([`ScenarioSpec::cost`] summed over its specs).
        estimate: u64,
        /// The daemon's configured budget in the same units.
        budget: u64,
    },
    /// A scenario spec in the request failed validation; the offending
    /// field is named so the client can fix it. The connection stays
    /// open.
    InvalidSpec {
        /// The offending spec field (dotted path), from
        /// [`Error::InvalidSpec`].
        field: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// The request line was malformed; the connection stays open.
    Protocol {
        /// What was malformed, from [`Error::Protocol`].
        reason: String,
    },
    /// Acknowledges a `shutdown` request.
    Shutdown,
}

impl Response {
    /// Renders the response as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Response::Hello(h) => format!(
                "{{\"hello\": {}, \"artifacts\": {}}}",
                jsonio::escape(SCHEMA),
                h.artifacts
            ),
            Response::Record(r) => {
                let mut body = format!(
                    "{{\"name\": {}, \"status\": {}, \"duration_ms\": {:.3}, \"memo\": {}",
                    jsonio::escape(&r.name),
                    jsonio::escape(&r.status),
                    r.duration_ms,
                    r.memo
                );
                if let Some(bytes) = r.bytes {
                    body.push_str(&format!(", \"bytes\": {bytes}"));
                }
                if let Some(digest) = &r.digest {
                    body.push_str(&format!(", \"digest\": {}", jsonio::escape(digest)));
                }
                if let Some(error) = &r.error {
                    body.push_str(&format!(", \"error\": {}", jsonio::escape(error)));
                }
                body.push('}');
                format!("{{\"record\": {body}}}")
            }
            Response::Report(r) => format!(
                "{{\"report\": {{\"ok\": {}, \"failures\": {}, \"cancelled\": {}, \
                 \"memo_hits\": {}, \"total_ms\": {:.3}, \"interrupted\": {}}}}}",
                r.ok, r.failures, r.cancelled, r.memo_hits, r.total_ms, r.interrupted
            ),
            Response::Stats(s) => format!(
                "{{\"stats\": {{\"accepted\": {}, \"served\": {}, \"memo_hits\": {}, \
                 \"cancelled\": {}, \"rejected\": {}, \"overloaded\": {}, \
                 \"conn_rejected\": {}, \"write_timeouts\": {}, \"protocol_errors\": {}, \
                 \"invalid_specs\": {}, \"too_expensive\": {}, \"panicked\": {}, \
                 \"quarantined\": {}, \"quarantine_entries\": {}, \
                 \"memo_entries\": {}, \"memo_bytes\": {}, \"memo_evictions\": {}, \
                 \"mesh_hits\": {}, \"mesh_misses\": {}}}}}",
                s.accepted,
                s.served,
                s.memo_hits,
                s.cancelled,
                s.rejected,
                s.overloaded,
                s.conn_rejected,
                s.write_timeouts,
                s.protocol_errors,
                s.invalid_specs,
                s.too_expensive,
                s.panicked,
                s.quarantined,
                s.quarantine_entries,
                s.memo_entries,
                s.memo_bytes,
                s.memo_evictions,
                s.mesh_hits,
                s.mesh_misses
            ),
            Response::Health(h) => format!(
                "{{\"health\": {{\"ready\": {}, \"inflight\": {}, \"capacity\": {}, \
                 \"oldest_inflight_ms\": {}, \"uptime_ms\": {}, \"memo_entries\": {}, \
                 \"memo_bytes\": {}, \"spill_active\": {}, \"shed\": {}, \
                 \"quarantine_entries\": {}}}}}",
                h.ready,
                h.inflight,
                h.capacity,
                h.oldest_inflight_ms,
                h.uptime_ms,
                h.memo_entries,
                h.memo_bytes,
                h.spill_active,
                h.shed,
                h.quarantine_entries
            ),
            Response::Busy { inflight, capacity } => {
                format!("{{\"busy\": {{\"inflight\": {inflight}, \"capacity\": {capacity}}}}}")
            }
            Response::Overloaded {
                waited_ms,
                budget_ms,
            } => format!(
                "{{\"overloaded\": {{\"waited_ms\": {waited_ms}, \"budget_ms\": {budget_ms}}}}}"
            ),
            Response::TooExpensive { estimate, budget } => {
                format!("{{\"too_expensive\": {{\"estimate\": {estimate}, \"budget\": {budget}}}}}")
            }
            Response::InvalidSpec { field, reason } => format!(
                "{{\"error\": {{\"kind\": \"invalid_spec\", \"field\": {}, \"reason\": {}}}}}",
                jsonio::escape(field),
                jsonio::escape(reason)
            ),
            Response::Protocol { reason } => format!(
                "{{\"error\": {{\"kind\": \"protocol\", \"reason\": {}}}}}",
                jsonio::escape(reason)
            ),
            Response::Shutdown => "{\"shutdown\": true}".into(),
        }
    }

    /// Parses one response line — the client half of the protocol.
    pub fn parse(line: &str) -> Result<Self, Error> {
        let value = jsonio::parse(line).map_err(|reason| Error::Protocol { reason })?;
        let obj = value.as_obj().ok_or_else(|| Error::Protocol {
            reason: "response must be a JSON object".into(),
        })?;
        if let Some(schema) = obj.get("hello") {
            if schema.as_str() != Some(SCHEMA) {
                return Err(Error::Protocol {
                    reason: format!("unsupported schema {schema:?} (want `{SCHEMA}`)"),
                });
            }
            let artifacts = value.get("artifacts").and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Hello(Hello {
                artifacts: artifacts as usize,
            }));
        }
        if let Some(record) = obj.get("record") {
            let field = |key: &str| record.get(key).cloned();
            let name = field("name")
                .as_ref()
                .and_then(Json::as_str)
                .map(str::to_owned);
            let status = field("status")
                .as_ref()
                .and_then(Json::as_str)
                .map(str::to_owned);
            let (Some(name), Some(status)) = (name, status) else {
                return Err(Error::Protocol {
                    reason: "record needs string `name` and `status`".into(),
                });
            };
            return Ok(Response::Record(RecordMsg {
                name,
                status,
                duration_ms: field("duration_ms")
                    .as_ref()
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                memo: field("memo")
                    .as_ref()
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                bytes: field("bytes").as_ref().and_then(Json::as_u64),
                digest: field("digest")
                    .as_ref()
                    .and_then(Json::as_str)
                    .map(str::to_owned),
                error: field("error")
                    .as_ref()
                    .and_then(Json::as_str)
                    .map(str::to_owned),
            }));
        }
        if let Some(report) = obj.get("report") {
            let count = |key: &str| report.get(key).and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Report(ReportMsg {
                ok: count("ok"),
                failures: count("failures"),
                cancelled: count("cancelled"),
                memo_hits: count("memo_hits"),
                total_ms: report.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0),
                interrupted: report
                    .get("interrupted")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }));
        }
        if let Some(stats) = obj.get("stats") {
            let count = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Stats(StatsMsg {
                accepted: count("accepted"),
                served: count("served"),
                memo_hits: count("memo_hits"),
                cancelled: count("cancelled"),
                rejected: count("rejected"),
                overloaded: count("overloaded"),
                conn_rejected: count("conn_rejected"),
                write_timeouts: count("write_timeouts"),
                protocol_errors: count("protocol_errors"),
                invalid_specs: count("invalid_specs"),
                too_expensive: count("too_expensive"),
                panicked: count("panicked"),
                quarantined: count("quarantined"),
                quarantine_entries: count("quarantine_entries"),
                memo_entries: count("memo_entries"),
                memo_bytes: count("memo_bytes"),
                memo_evictions: count("memo_evictions"),
                mesh_hits: count("mesh_hits"),
                mesh_misses: count("mesh_misses"),
            }));
        }
        if let Some(health) = obj.get("health") {
            let count = |key: &str| health.get(key).and_then(Json::as_u64).unwrap_or(0);
            let flag = |key: &str| health.get(key).and_then(Json::as_bool).unwrap_or(false);
            return Ok(Response::Health(HealthMsg {
                ready: flag("ready"),
                inflight: count("inflight"),
                capacity: count("capacity"),
                oldest_inflight_ms: count("oldest_inflight_ms"),
                uptime_ms: count("uptime_ms"),
                memo_entries: count("memo_entries"),
                memo_bytes: count("memo_bytes"),
                spill_active: flag("spill_active"),
                shed: count("shed"),
                quarantine_entries: count("quarantine_entries"),
            }));
        }
        if let Some(busy) = obj.get("busy") {
            let count = |key: &str| busy.get(key).and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Busy {
                inflight: count("inflight"),
                capacity: count("capacity"),
            });
        }
        if let Some(overloaded) = obj.get("overloaded") {
            let count = |key: &str| overloaded.get(key).and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::Overloaded {
                waited_ms: count("waited_ms"),
                budget_ms: count("budget_ms"),
            });
        }
        if let Some(expensive) = obj.get("too_expensive") {
            let count = |key: &str| expensive.get(key).and_then(Json::as_u64).unwrap_or(0);
            return Ok(Response::TooExpensive {
                estimate: count("estimate"),
                budget: count("budget"),
            });
        }
        if let Some(error) = obj.get("error") {
            let reason = error
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned();
            if error.get("kind").and_then(Json::as_str) == Some("invalid_spec") {
                return Ok(Response::InvalidSpec {
                    field: error
                        .get("field")
                        .and_then(Json::as_str)
                        .unwrap_or("spec")
                        .to_owned(),
                    reason,
                });
            }
            return Ok(Response::Protocol { reason });
        }
        if obj.get("shutdown").is_some() {
            return Ok(Response::Shutdown);
        }
        Err(Error::Protocol {
            reason: "unknown response shape".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn run_request_round_trips() {
        let req = Request::Run(RunRequest {
            names: vec!["fig5".into(), "table2".into()],
            specs: Vec::new(),
            csv: true,
            deadline_ms: Some(250),
        });
        let line = req.to_json();
        assert!(Request::parse(&line).is_ok_and(|parsed| parsed == req));
        // Omitted optional fields default.
        let req = Request::parse(r#"{"run": {"names": ["fig5"]}}"#).unwrap();
        assert_eq!(
            req,
            Request::Run(RunRequest {
                names: vec!["fig5".into()],
                specs: Vec::new(),
                csv: false,
                deadline_ms: None,
            })
        );
    }

    #[test]
    fn spec_requests_round_trip() {
        let line = r#"{"run": {"names": ["fig5"], "csv": true,
            "specs": [{"node": 70}, {"node": 100, "grid": {"resolution": 33}}]}}"#;
        let Ok(Request::Run(run)) = Request::parse(line) else {
            panic!("spec request parses");
        };
        assert_eq!(run.specs.len(), 2);
        assert_eq!(run.specs[1].grid.map(|g| g.resolution), Some(33));
        let rendered = Request::to_json(&Request::Run(run.clone()));
        assert!(
            Request::parse(&rendered).is_ok_and(|round| round == Request::Run(run)),
            "{rendered}"
        );
    }

    #[test]
    fn malformed_specs_are_invalid_spec_not_protocol() {
        let cases = [
            (r#"{"run": {"specs": [{"node": 90}]}}"#, "node"),
            (
                r#"{"run": {"specs": [{"node": 70, "grid": {"resolution": 2000}}]}}"#,
                "grid.resolution",
            ),
            (
                r#"{"run": {"specs": [{"node": 70, "activty": 0.1}]}}"#,
                "activty",
            ),
        ];
        for (line, field) in cases {
            match Request::parse(line) {
                Err(Error::InvalidSpec { field: f, .. }) => assert_eq!(f, field, "{line}"),
                other => panic!("{line} -> {other:?}"),
            }
        }
        // A non-array `specs` is a protocol-shape error, not a spec error.
        assert!(matches!(
            Request::parse(r#"{"run": {"specs": {"node": 70}}}"#),
            Err(Error::Protocol { .. })
        ));
    }

    #[test]
    fn unknown_run_keys_are_rejected_not_ignored() {
        // The original bug: a typo'd `deadlne_ms` was silently dropped,
        // turning a bounded request into an unbounded one.
        match Request::parse(r#"{"run": {"names": ["fig5"], "deadlne_ms": 100}}"#) {
            Err(Error::Protocol { reason }) => {
                assert!(reason.contains("`deadlne_ms`"), "{reason}");
                assert!(
                    reason.contains("deadline_ms"),
                    "lists allowed keys: {reason}"
                );
            }
            other => panic!("typo'd key must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn stats_health_and_shutdown_round_trip() {
        for req in [Request::Stats, Request::Health, Request::Shutdown] {
            assert_eq!(Request::parse(&req.to_json()), Ok(req));
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let cases = [
            ("{\"runn\": {}}", "unknown request `runn`"),
            ("[1, 2]", "must be a JSON object"),
            ("{\"run\": {\"names\": \"fig5\"}}", "array of strings"),
            ("{\"run\": {\"names\": [1]}}", "array of strings"),
            ("{\"run\": {\"csv\": \"yes\"}}", "boolean"),
            ("{\"run\": {\"deadline_ms\": -5}}", "non-negative"),
            ("{}", "empty request"),
            ("not json", "unknown literal"),
        ];
        for (line, needle) in cases {
            match Request::parse(line) {
                Err(Error::Protocol { reason }) => {
                    assert!(reason.contains(needle), "`{line}` -> {reason}");
                }
                other => panic!("`{line}` -> {other:?}"),
            }
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_foreign_schema() {
        let line = Response::Hello(Hello { artifacts: 17 }).to_json();
        assert_eq!(
            Response::parse(&line),
            Ok(Response::Hello(Hello { artifacts: 17 }))
        );
        assert!(matches!(
            Response::parse(r#"{"hello": "otherproto/v9"}"#),
            Err(Error::Protocol { .. })
        ));
    }

    #[test]
    fn record_wire_form_mirrors_job_record() {
        let record = JobRecord {
            name: "fig5".into(),
            outcome: Ok("v,drop\n0,1\n".into()),
            duration: Duration::from_millis(12),
            worker: 1,
            attempts: 1,
            timed_out: false,
        };
        let msg = RecordMsg::from_record(&record, true);
        assert_eq!(msg.status, "ok");
        assert!(msg.memo);
        assert_eq!(msg.bytes, Some(11));
        assert_eq!(msg.digest, record.digest());
        let parsed = Response::parse(&Response::Record(msg.clone()).to_json());
        assert_eq!(parsed, Ok(Response::Record(msg)));

        let failed = JobRecord {
            name: "nope".into(),
            outcome: Err(Error::UnknownArtifact {
                name: "nope".into(),
            }),
            duration: Duration::ZERO,
            worker: 0,
            attempts: 1,
            timed_out: false,
        };
        let msg = RecordMsg::from_record(&failed, false);
        assert_eq!(msg.status, "error");
        assert!(msg.error.as_deref().unwrap_or("").contains("nope"));
        assert_eq!(msg.bytes, None);
    }

    #[test]
    fn report_stats_busy_round_trip() {
        let report = Response::Report(ReportMsg {
            ok: 3,
            failures: 1,
            cancelled: 2,
            memo_hits: 1,
            total_ms: 42.5,
            interrupted: true,
        });
        assert_eq!(Response::parse(&report.to_json()), Ok(report));

        let stats = Response::Stats(StatsMsg {
            accepted: 10,
            served: 9,
            memo_hits: 4,
            cancelled: 1,
            rejected: 2,
            overloaded: 11,
            conn_rejected: 12,
            write_timeouts: 13,
            protocol_errors: 3,
            invalid_specs: 21,
            too_expensive: 22,
            panicked: 23,
            quarantined: 24,
            quarantine_entries: 25,
            memo_entries: 5,
            memo_bytes: 8192,
            memo_evictions: 14,
            mesh_hits: 7,
            mesh_misses: 6,
        });
        assert_eq!(Response::parse(&stats.to_json()), Ok(stats));

        let busy = Response::Busy {
            inflight: 2,
            capacity: 2,
        };
        assert_eq!(Response::parse(&busy.to_json()), Ok(busy));

        let overloaded = Response::Overloaded {
            waited_ms: 120,
            budget_ms: 100,
        };
        assert_eq!(Response::parse(&overloaded.to_json()), Ok(overloaded));

        let health = Response::Health(HealthMsg {
            ready: true,
            inflight: 1,
            capacity: 2,
            oldest_inflight_ms: 35,
            uptime_ms: 9000,
            memo_entries: 5,
            memo_bytes: 4096,
            spill_active: true,
            shed: 3,
            quarantine_entries: 4,
        });
        assert_eq!(Response::parse(&health.to_json()), Ok(health));

        let expensive = Response::TooExpensive {
            estimate: 200_050,
            budget: 100_000,
        };
        assert_eq!(Response::parse(&expensive.to_json()), Ok(expensive));

        let invalid = Response::InvalidSpec {
            field: "grid.resolution".into(),
            reason: "must be an integer in [5, 1025], got 2000".into(),
        };
        assert_eq!(Response::parse(&invalid.to_json()), Ok(invalid));

        let err = Response::Protocol {
            reason: "unknown request `runn`".into(),
        };
        assert_eq!(Response::parse(&err.to_json()), Ok(err));

        assert_eq!(
            Response::parse("{\"shutdown\": true}"),
            Ok(Response::Shutdown)
        );
        assert!(Response::parse("{\"mystery\": 1}").is_err());
    }
}
