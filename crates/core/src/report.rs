//! Plain-text table rendering for examples and the reproduction harness.

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use nanopower::report::TextTable;
///
/// let mut t = TextTable::new(&["node", "Vth (V)"]);
/// t.row(&["180 nm", "0.300"]);
/// t.row(&["130 nm", "0.288"]);
/// let s = t.render();
/// assert!(s.contains("180 nm"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert!(
            cells.len() <= self.headers.len(),
            "row has more cells than headers"
        );
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{:>width$}", c, width = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells (3 significant-ish digits).
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{:.0}", x)
    } else if x.abs() >= 10.0 {
        format!("{:.1}", x)
    } else if x.abs() >= 0.1 {
        format!("{:.2}", x)
    } else {
        format!("{:.3}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long header"]);
        t.row(&["1", "2"]).row(&["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].len() == lines[3].len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('1'));
    }

    #[test]
    #[should_panic(expected = "more cells than headers")]
    fn long_row_panics() {
        let mut t = TextTable::new(&["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(12345.6), "12346");
        assert_eq!(fmt_sig(45.67), "45.7");
        assert_eq!(fmt_sig(0.456), "0.46");
        assert_eq!(fmt_sig(0.0456), "0.046");
    }
}
