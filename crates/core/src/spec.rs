//! Typed scenario specs: the untrusted-input front door of the
//! `nanopowerd` service.
//!
//! A [`ScenarioSpec`] is a chip scenario described over the wire — node,
//! activity, effective fraction, junction temperature, optional power-grid
//! mesh and netlist tiers, workload ratio — rendered through the same
//! validating paths the registry artifacts use ([`crate::chip::ChipBuilder`],
//! [`np_grid::mesh::MeshCache`], [`np_circuit::generate::NetlistSpec`]).
//! Because specs arrive from untrusted clients, this module is built as a
//! validation tier, not a deserializer:
//!
//! - **Strict parsing** — unknown keys, wrong types, out-of-range and
//!   non-finite values are all rejected with [`Error::InvalidSpec`]
//!   naming the offending field, never a generic protocol error.
//! - **Canonical form** — [`ScenarioSpec::to_json`] renders one fixed
//!   key order with defaults filled in, so the FNV-1a digest over it
//!   ([`ScenarioSpec::digest`]) is stable across client key order and
//!   omitted-vs-explicit defaults. The digest keys the daemon's
//!   cross-request memo and its panic quarantine.
//! - **Static cost model** — [`ScenarioSpec::cost`] estimates work units
//!   (mesh nodes × solver-iteration bound, netlist cells × per-cell STA
//!   and power work) before any evaluation happens, so the daemon can
//!   reject a resource bomb with a typed `too_expensive` response
//!   without doing the work.
//!
//! Evaluation ([`ScenarioSpec::evaluate`]) is deterministic, so spec
//! outputs are memoizable and digest-checkable exactly like registry
//! artifacts.

use crate::chip::{Chip, PowerBudget, ThermalClosure};
use crate::engine::fnv1a64;
use crate::error::Error;
use crate::jsonio::{self, Json};
use np_roadmap::TechNode;
use np_units::{Celsius, Hertz, Seconds, Volts, Watts};
use std::fmt;

/// Smallest accepted power-grid mesh resolution (nodes per side) — the
/// mesh assembler's own floor.
pub const MIN_GRID_RESOLUTION: usize = 5;

/// Largest accepted power-grid mesh resolution: the production-scale
/// `fig5-mesh` tier. Anything larger is not a scenario, it is a denial
/// of service.
pub const MAX_GRID_RESOLUTION: usize = 1025;

/// Smallest accepted netlist tier, in cells.
pub const MIN_NETLIST_CELLS: usize = 100;

/// Largest accepted netlist tier, in cells — the 10⁷ production ceiling.
pub const MAX_NETLIST_CELLS: usize = 10_000_000;

/// Default per-request spec cost budget in work units
/// (`nanopowerd --max-spec-cost`): admits the full 1025² mesh tier and
/// the 10⁶-cell netlist tier, rejects the 10⁷-cell tier.
pub const DEFAULT_COST_BUDGET: u64 = 100_000;

/// Fixed work units charged to every spec: the power-budget check plus
/// the 40 000-step DTM thermal-closure simulation.
pub const BASE_COST_UNITS: u64 = 50;

/// Optional power-grid leg of a spec: re-solve the node's min-pitch
/// IR-drop geometry on an explicit mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    /// Mesh nodes per side, in
    /// [[`MIN_GRID_RESOLUTION`], [`MAX_GRID_RESOLUTION`]].
    pub resolution: usize,
}

/// Optional netlist leg of a spec: generate a streamed
/// [`np_circuit::generate::NetlistSpec::large`] tier and run full STA
/// plus the activity-scaled power model over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetlistTier {
    /// Netlist size in cells, in
    /// [[`MIN_NETLIST_CELLS`], [`MAX_NETLIST_CELLS`]].
    pub cells: usize,
    /// Generator seed — equal seeds generate equal netlists.
    pub seed: u64,
}

/// One wire-submitted chip scenario (see the module docs).
///
/// ```
/// use nanopower::spec::ScenarioSpec;
/// let spec = ScenarioSpec::parse(r#"{"node": 70, "activity": 0.2}"#)?;
/// assert_eq!(spec.node, nanopower::roadmap::TechNode::N70);
/// // Canonicalization makes the digest independent of key order and
/// // omitted defaults.
/// let swapped = ScenarioSpec::parse(r#"{"activity": 0.2, "node": 70, "workload_ratio": 1}"#)?;
/// assert_eq!(spec.digest(), swapped.digest());
/// # Ok::<(), nanopower::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Technology node, parsed from its drawn feature size in nm
    /// (`"node": 70`).
    pub node: TechNode,
    /// Average switching activity, finite in `(0, 1]` (default 0.1).
    pub activity: f64,
    /// Effective-to-theoretical worst-case power ratio, finite in
    /// `(0, 1]` (default 0.75).
    pub effective_fraction: f64,
    /// Junction temperature override in °C, finite in `[-55, 250]`;
    /// defaults to the node's ITRS limit (left `None` on the wire).
    pub junction_temp_c: Option<f64>,
    /// Workload duty ratio, finite in `(0, 1]` (default 1.0): scales the
    /// switching activity every power analysis sees, so one spec family
    /// sweeps idle-to-peak workloads.
    pub workload_ratio: f64,
    /// Optional power-grid mesh leg.
    pub grid: Option<GridSpec>,
    /// Optional netlist tier leg.
    pub netlist: Option<NetlistTier>,
    /// Hidden deterministic fault-injection hook (the `--hold-ms` /
    /// `--chaos` precedent): `"panic"` makes [`ScenarioSpec::evaluate`]
    /// panic, so the quarantine path is testable end to end. Any other
    /// value is rejected at parse time.
    pub chaos: Option<String>,
}

/// Builds the typed rejection for one spec field.
fn invalid(field: &str, reason: impl Into<String>) -> Error {
    Error::InvalidSpec {
        field: field.into(),
        reason: reason.into(),
    }
}

/// Extracts a finite `f64` in `(0, 1]` for `field`.
fn unit_interval(obj: &Json, field: &str, default: f64) -> Result<f64, Error> {
    match obj.get(field) {
        None => Ok(default),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| invalid(field, "must be a number"))?;
            if !(x.is_finite() && x > 0.0 && x <= 1.0) {
                return Err(invalid(field, format!("must be finite in (0, 1], got {x}")));
            }
            Ok(x)
        }
    }
}

/// A non-negative *integral* number — unlike `Json::as_u64`, a
/// fractional `33.5` is rejected, not truncated.
fn strict_u64(value: &Json) -> Option<u64> {
    let n = value.as_f64()?;
    (n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
}

/// Extracts a `usize` in `[lo, hi]` for `field`.
fn bounded_usize(value: &Json, field: &str, lo: usize, hi: usize) -> Result<usize, Error> {
    let n = strict_u64(value).ok_or_else(|| invalid(field, "must be a non-negative integer"))?;
    if n < lo as u64 || n > hi as u64 {
        return Err(invalid(
            field,
            format!("must be an integer in [{lo}, {hi}], got {n}"),
        ));
    }
    Ok(n as usize)
}

/// Rejects any key of `obj` outside `allowed`, naming the first unknown
/// (keys sorted, so the message is deterministic).
fn reject_unknown_keys(obj: &Json, scope: &str, allowed: &[&str]) -> Result<(), Error> {
    let Some(map) = obj.as_obj() else {
        let field = if scope.is_empty() { "spec" } else { scope };
        return Err(invalid(field, "must be a JSON object"));
    };
    let mut keys: Vec<&str> = map.keys().map(String::as_str).collect();
    keys.sort_unstable();
    for key in keys {
        if !allowed.contains(&key) {
            let field = if scope.is_empty() {
                key.to_string()
            } else {
                format!("{scope}.{key}")
            };
            return Err(invalid(
                &field,
                format!("unknown key (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

impl ScenarioSpec {
    /// The default scenario at a node — the same defaults as
    /// [`Chip::at_node`], with no optional legs.
    pub fn at_node(node: TechNode) -> Self {
        ScenarioSpec {
            node,
            activity: 0.1,
            effective_fraction: 0.75,
            junction_temp_c: None,
            workload_ratio: 1.0,
            grid: None,
            netlist: None,
            chaos: None,
        }
    }

    /// Parses a spec from one JSON text. Every rejection is a typed
    /// [`Error::InvalidSpec`] naming the offending field; malformed
    /// JSON itself is reported under the pseudo-field `spec`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSpec`] as above.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let value = jsonio::parse(text).map_err(|reason| invalid("spec", reason))?;
        Self::from_json(&value)
    }

    /// Parses a spec from an already-parsed JSON value (the request
    /// parser's entry point).
    pub(crate) fn from_json(value: &Json) -> Result<Self, Error> {
        reject_unknown_keys(
            value,
            "",
            &[
                "node",
                "activity",
                "effective_fraction",
                "junction_temp_c",
                "workload_ratio",
                "grid",
                "netlist",
                "chaos",
            ],
        )?;
        let node_value = value
            .get("node")
            .ok_or_else(|| invalid("node", "required (drawn feature size in nm)"))?;
        let node_nm = strict_u64(node_value)
            .ok_or_else(|| invalid("node", "must be a non-negative integer (drawn nm)"))?;
        let node = u32::try_from(node_nm)
            .ok()
            .and_then(TechNode::from_drawn_nm)
            .ok_or_else(|| {
                invalid(
                    "node",
                    format!("no roadmap node at {node_nm} nm (have 180, 130, 100, 70, 50, 35)"),
                )
            })?;
        let activity = unit_interval(value, "activity", 0.1)?;
        let effective_fraction = unit_interval(value, "effective_fraction", 0.75)?;
        let workload_ratio = unit_interval(value, "workload_ratio", 1.0)?;
        let junction_temp_c = match value.get("junction_temp_c") {
            None => None,
            Some(v) => {
                let t = v
                    .as_f64()
                    .ok_or_else(|| invalid("junction_temp_c", "must be a number"))?;
                if !(t.is_finite() && (-55.0..=250.0).contains(&t)) {
                    return Err(invalid(
                        "junction_temp_c",
                        format!("must be finite in [-55, 250] °C, got {t}"),
                    ));
                }
                Some(t)
            }
        };
        let grid = match value.get("grid") {
            None => None,
            Some(g) => {
                reject_unknown_keys(g, "grid", &["resolution"])?;
                let resolution = g
                    .get("resolution")
                    .ok_or_else(|| invalid("grid.resolution", "required"))?;
                Some(GridSpec {
                    resolution: bounded_usize(
                        resolution,
                        "grid.resolution",
                        MIN_GRID_RESOLUTION,
                        MAX_GRID_RESOLUTION,
                    )?,
                })
            }
        };
        let netlist = match value.get("netlist") {
            None => None,
            Some(n) => {
                reject_unknown_keys(n, "netlist", &["cells", "seed"])?;
                let cells = n
                    .get("cells")
                    .ok_or_else(|| invalid("netlist.cells", "required"))?;
                let cells =
                    bounded_usize(cells, "netlist.cells", MIN_NETLIST_CELLS, MAX_NETLIST_CELLS)?;
                let seed = match n.get("seed") {
                    None => 0,
                    Some(s) => strict_u64(s)
                        .ok_or_else(|| invalid("netlist.seed", "must be a non-negative integer"))?,
                };
                Some(NetlistTier { cells, seed })
            }
        };
        let chaos = match value.get("chaos") {
            None => None,
            Some(c) => {
                let mode = c
                    .as_str()
                    .ok_or_else(|| invalid("chaos", "must be a string"))?;
                if mode != "panic" {
                    return Err(invalid(
                        "chaos",
                        format!("unknown chaos mode `{mode}` (only `panic`)"),
                    ));
                }
                Some(mode.to_owned())
            }
        };
        Ok(ScenarioSpec {
            node,
            activity,
            effective_fraction,
            junction_temp_c,
            workload_ratio,
            grid,
            netlist,
            chaos,
        })
    }

    /// The canonical JSON form: fixed key order, defaults written
    /// explicitly, optional legs only when present. `parse ∘ to_json`
    /// is the identity, and the [`digest`](Self::digest) is computed
    /// over exactly this text.
    pub fn to_json(&self) -> String {
        let mut out =
            format!(
            "{{\"node\": {}, \"activity\": {}, \"effective_fraction\": {}, \"workload_ratio\": {}",
            self.node.drawn().0, self.activity, self.effective_fraction, self.workload_ratio
        );
        if let Some(t) = self.junction_temp_c {
            out.push_str(&format!(", \"junction_temp_c\": {t}"));
        }
        if let Some(g) = &self.grid {
            out.push_str(&format!(", \"grid\": {{\"resolution\": {}}}", g.resolution));
        }
        if let Some(n) = &self.netlist {
            out.push_str(&format!(
                ", \"netlist\": {{\"cells\": {}, \"seed\": {}}}",
                n.cells, n.seed
            ));
        }
        if let Some(c) = &self.chaos {
            out.push_str(&format!(", \"chaos\": {}", jsonio::escape(c)));
        }
        out.push('}');
        out
    }

    /// FNV-1a digest of the canonical form — stable across client key
    /// order and omitted defaults. This is the spec's identity for the
    /// daemon's memo and quarantine.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_json().as_bytes())
    }

    /// The record/job name the daemon reports for this spec:
    /// `spec:<16 hex digest>`.
    pub fn job_name(&self) -> String {
        format!("spec:{:016x}", self.digest())
    }

    /// Static work-unit estimate, computed before any evaluation (one
    /// unit ≈ a thousand inner-loop operations):
    ///
    /// - [`BASE_COST_UNITS`] for the chip analyses every spec runs;
    /// - the grid leg charges mesh nodes × a solver-iteration bound
    ///   (O(resolution) PCG iterations below the multigrid threshold,
    ///   a flat sweep count above it);
    /// - the netlist leg charges cells × per-cell generation, STA, and
    ///   power work.
    ///
    /// The daemon compares the request's summed estimate against
    /// `--max-spec-cost` (default [`DEFAULT_COST_BUDGET`]) and rejects
    /// over-budget requests with a typed `too_expensive` response.
    pub fn cost(&self) -> u64 {
        let mut units = BASE_COST_UNITS;
        if let Some(g) = &self.grid {
            let r = g.resolution as u64;
            let iterations = if g.resolution >= 257 { 30 } else { 3 * r };
            units += r * r * iterations / 1000;
        }
        if let Some(n) = &self.netlist {
            units += n.cells as u64 * 20 / 1000;
        }
        units
    }

    /// Evaluates the scenario through the validating model paths:
    /// chip power budget and thermal closure always; min-pitch IR-drop
    /// mesh solve and netlist STA + power when the optional legs are
    /// present. Deterministic, so the output is memoizable by digest.
    ///
    /// # Errors
    ///
    /// Propagates model errors ([`Error::InvalidParameter`] from the
    /// chip builder, grid/circuit errors from the legs).
    ///
    /// # Panics
    ///
    /// When the hidden `chaos: "panic"` hook is set — the deterministic
    /// trigger the quarantine tests and fuzzer rely on.
    pub fn evaluate(&self) -> Result<SpecReport, Error> {
        if self.chaos.as_deref() == Some("panic") {
            panic!(
                "spec chaos hook: panic requested by spec {}",
                self.job_name()
            );
        }
        // The workload duty ratio scales the switching activity every
        // power analysis sees; both factors are in (0, 1], so the
        // product stays inside the builder's accepted range.
        let duty_activity = self.activity * self.workload_ratio;
        let mut builder = Chip::builder(self.node)
            .activity(duty_activity)
            .effective_fraction(self.effective_fraction);
        if let Some(t) = self.junction_temp_c {
            builder = builder.junction_temp(Celsius(t));
        }
        let chip = builder.build()?;
        let budget = chip.power_budget()?;
        let thermal = chip.thermal_closure()?;
        let grid = match &self.grid {
            None => None,
            Some(g) => {
                let plan = np_grid::plan::GridPlan::min_pitch(self.node)?;
                let rail_width = plan.rail_width.ok_or(np_grid::GridError::BadParameter(
                    "min-pitch plan lost routability",
                ))?;
                let analytic =
                    np_grid::analytic::worst_case_drop(self.node, plan.bump_pitch, rail_width)?;
                let mut cache = np_grid::mesh::MeshCache::new();
                let mesh = cache.worst_drop_with_resolution(
                    self.node,
                    plan.bump_pitch,
                    rail_width,
                    g.resolution,
                )?;
                Some(GridResult {
                    resolution: g.resolution,
                    analytic,
                    mesh,
                })
            }
        };
        let netlist = match &self.netlist {
            None => None,
            Some(tier) => {
                let netlist_spec = np_circuit::generate::NetlistSpec::large(tier.seed, tier.cells);
                let netlist = np_circuit::generate::generate_netlist(&netlist_spec);
                let ctx = np_circuit::sta::TimingContext::for_node(self.node)?;
                let critical = ctx.analyze(&netlist)?.critical_delay();
                let freq = Hertz(1.0 / critical.0);
                let power = np_circuit::power::netlist_power(&netlist, &ctx, duty_activity, freq)?;
                Some(NetlistResult {
                    cells: tier.cells,
                    seed: tier.seed,
                    critical,
                    dynamic: power.dynamic,
                    leakage: power.leakage,
                })
            }
        };
        Ok(SpecReport {
            spec: self.clone(),
            chip,
            budget,
            thermal,
            grid,
            netlist,
        })
    }

    /// Evaluates and renders the scenario in the requested form — the
    /// spec counterpart of an artifact's `render_text`/`render_csv`.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`](Self::evaluate).
    pub fn render(&self, csv: bool) -> Result<String, Error> {
        let report = self.evaluate()?;
        Ok(if csv { report.csv() } else { report.render() })
    }
}

/// The grid leg's result: the node's min-pitch geometry solved
/// analytically and on the requested mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridResult {
    /// Mesh nodes per side.
    pub resolution: usize,
    /// Closed-form worst-case IR drop.
    pub analytic: Volts,
    /// Numerical worst-case drop on the mesh.
    pub mesh: Volts,
}

/// The netlist leg's result: full STA plus activity-scaled power over
/// the generated tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetlistResult {
    /// Netlist size in cells.
    pub cells: usize,
    /// Generator seed.
    pub seed: u64,
    /// Critical-path delay.
    pub critical: Seconds,
    /// Dynamic power at the critical-path clock and the spec's
    /// duty-scaled activity.
    pub dynamic: Watts,
    /// Leakage power at the spec's junction temperature.
    pub leakage: Watts,
}

/// Everything one spec evaluation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecReport {
    /// The spec as evaluated.
    pub spec: ScenarioSpec,
    /// The validated chip scenario.
    pub chip: Chip,
    /// The Section 3.1 static-power budget check.
    pub budget: PowerBudget,
    /// The Section 2.1 packaging/DTM closure.
    pub thermal: ThermalClosure,
    /// The grid leg, when requested.
    pub grid: Option<GridResult>,
    /// The netlist leg, when requested.
    pub netlist: Option<NetlistResult>,
}

impl SpecReport {
    /// Plain-text rendering, one line per analysis.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Scenario {} — {}, activity {:.3}, effective {:.2}, Tj {}, workload {:.2}\n",
            self.spec.job_name(),
            self.chip.node,
            self.spec.activity,
            self.spec.effective_fraction,
            self.chip.junction_temp,
            self.spec.workload_ratio,
        );
        out.push_str(&format!("  power budget: {}\n", self.budget));
        out.push_str(&format!("  thermal:      {}\n", self.thermal));
        if let Some(g) = &self.grid {
            out.push_str(&format!(
                "  grid {}x{}:   analytic {:.3} mV, mesh {:.3} mV (ratio {:.3})\n",
                g.resolution,
                g.resolution,
                g.analytic.0 * 1e3,
                g.mesh.0 * 1e3,
                g.mesh.0 / g.analytic.0,
            ));
        }
        if let Some(n) = &self.netlist {
            out.push_str(&format!(
                "  netlist {} cells (seed {}): critical {:.1} ps, dynamic {:.3} W, leakage {:.3} W\n",
                n.cells,
                n.seed,
                n.critical.0 * 1e12,
                n.dynamic.0,
                n.leakage.0,
            ));
        }
        out
    }

    /// CSV rendering: one header line, one data row; absent legs leave
    /// their columns empty.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "node_nm,activity,effective_fraction,junction_temp_c,workload_ratio,\
             budget_w,static_limit_w,leakage_w,reduction_needed,theta_dtm,\
             grid_resolution,grid_analytic_mv,grid_mesh_mv,\
             netlist_cells,netlist_critical_ps,netlist_dynamic_w,netlist_leakage_w\n",
        );
        let (grid_res, grid_analytic, grid_mesh) = match &self.grid {
            Some(g) => (
                g.resolution.to_string(),
                format!("{:.6}", g.analytic.0 * 1e3),
                format!("{:.6}", g.mesh.0 * 1e3),
            ),
            None => (String::new(), String::new(), String::new()),
        };
        let (nl_cells, nl_ps, nl_dyn, nl_leak) = match &self.netlist {
            Some(n) => (
                n.cells.to_string(),
                format!("{:.3}", n.critical.0 * 1e12),
                format!("{:.6}", n.dynamic.0),
                format!("{:.6}", n.leakage.0),
            ),
            None => (String::new(), String::new(), String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{:.3},{:.3},{:.3},{:.6},{:.6},{grid_res},{grid_analytic},{grid_mesh},{nl_cells},{nl_ps},{nl_dyn},{nl_leak}\n",
            self.chip.node.drawn().0,
            self.spec.activity,
            self.spec.effective_fraction,
            self.chip.junction_temp.0,
            self.spec.workload_ratio,
            self.budget.total.0,
            self.budget.static_limit.0,
            self.budget.projected_leakage.0,
            self.budget.reduction_needed,
            self.thermal.theta_dtm.0,
        ));
        out
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_legs_evaluate_at_every_node() {
        // The fuzz harness asserts valid specs produce clean reports, so
        // every node must carry a small mesh leg without tripping the
        // routability guard.
        for node in TechNode::ALL {
            let mut spec = ScenarioSpec::at_node(node);
            spec.grid = Some(GridSpec { resolution: 9 });
            let report = spec
                .evaluate()
                .unwrap_or_else(|e| panic!("{node:?} grid leg: {e}"));
            assert!(report.grid.is_some(), "{node:?}");
        }
    }

    #[test]
    fn defaults_fill_and_round_trip() {
        let spec = ScenarioSpec::parse(r#"{"node": 70}"#).unwrap();
        assert_eq!(spec, ScenarioSpec::at_node(TechNode::N70));
        assert_eq!(spec.activity, 0.1);
        assert_eq!(spec.workload_ratio, 1.0);
        let round = ScenarioSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
        assert_eq!(round.digest(), spec.digest());
    }

    #[test]
    fn full_spec_round_trips_and_digest_ignores_key_order() {
        let a = ScenarioSpec::parse(
            r#"{"node": 100, "activity": 0.25, "effective_fraction": 0.8,
                "junction_temp_c": 85, "workload_ratio": 0.5,
                "grid": {"resolution": 33}, "netlist": {"cells": 1000, "seed": 7}}"#,
        )
        .unwrap();
        let b = ScenarioSpec::parse(
            r#"{"netlist": {"seed": 7, "cells": 1000}, "grid": {"resolution": 33},
                "workload_ratio": 0.5, "junction_temp_c": 85,
                "effective_fraction": 0.8, "activity": 0.25, "node": 100}"#,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(ScenarioSpec::parse(&a.to_json()).unwrap(), a);
        // Omitted defaults digest identically to explicit ones.
        let explicit = ScenarioSpec::parse(r#"{"node": 50, "activity": 0.1}"#).unwrap();
        let omitted = ScenarioSpec::parse(r#"{"node": 50}"#).unwrap();
        assert_eq!(explicit.digest(), omitted.digest());
        // But real differences change the digest.
        let other = ScenarioSpec::parse(r#"{"node": 50, "activity": 0.2}"#).unwrap();
        assert_ne!(other.digest(), omitted.digest());
    }

    #[test]
    fn rejections_name_the_offending_field() {
        let cases = [
            (r#"{"activity": 0.1}"#, "node", "required"),
            (r#"{"node": 90}"#, "node", "no roadmap node"),
            (r#"{"node": -70}"#, "node", "non-negative"),
            (r#"{"node": 70, "activity": 0}"#, "activity", "(0, 1]"),
            (r#"{"node": 70, "activity": 1.5}"#, "activity", "(0, 1]"),
            (r#"{"node": 70, "activity": "hot"}"#, "activity", "number"),
            (
                r#"{"node": 70, "effective_fraction": -1}"#,
                "effective_fraction",
                "(0, 1]",
            ),
            (
                r#"{"node": 70, "junction_temp_c": 300}"#,
                "junction_temp_c",
                "[-55, 250]",
            ),
            (
                r#"{"node": 70, "workload_ratio": 2}"#,
                "workload_ratio",
                "(0, 1]",
            ),
            (r#"{"node": 70, "grid": {}}"#, "grid.resolution", "required"),
            (
                r#"{"node": 70, "grid": {"resolution": 3}}"#,
                "grid.resolution",
                "[5, 1025]",
            ),
            (
                r#"{"node": 70, "grid": {"resolution": 2000}}"#,
                "grid.resolution",
                "[5, 1025]",
            ),
            (
                r#"{"node": 70, "grid": {"resolution": 33, "shape": "torus"}}"#,
                "grid.shape",
                "unknown key",
            ),
            (
                r#"{"node": 70, "netlist": {"cells": 10}}"#,
                "netlist.cells",
                "[100, 10000000]",
            ),
            (
                r#"{"node": 70, "netlist": {"cells": 1000, "seed": -1}}"#,
                "netlist.seed",
                "non-negative",
            ),
            (r#"{"node": 70, "activty": 0.1}"#, "activty", "unknown key"),
            (
                r#"{"node": 70, "chaos": "segfault"}"#,
                "chaos",
                "unknown chaos mode",
            ),
            (r#"{"node": 70, "chaos": 1}"#, "chaos", "string"),
            (r#"[1]"#, "spec", "JSON object"),
            (r#"{"node": 70,"#, "spec", ""),
        ];
        for (text, field, needle) in cases {
            match ScenarioSpec::parse(text) {
                Err(Error::InvalidSpec { field: f, reason }) => {
                    assert_eq!(f, field, "{text} -> field {f}: {reason}");
                    assert!(reason.contains(needle), "{text} -> {reason}");
                }
                other => panic!("{text} -> {other:?}"),
            }
        }
    }

    #[test]
    fn huge_and_non_finite_numbers_are_typed_rejections() {
        // jsonio itself refuses to produce non-finite values; the spec
        // layer reports that as a typed invalid_spec, never a panic.
        for text in [
            r#"{"node": 70, "activity": 1e999}"#,
            r#"{"node": 70, "junction_temp_c": -1e999}"#,
        ] {
            assert!(
                matches!(ScenarioSpec::parse(text), Err(Error::InvalidSpec { .. })),
                "{text}"
            );
        }
    }

    #[test]
    fn cost_model_orders_tiers_sensibly() {
        let plain = ScenarioSpec::at_node(TechNode::N70);
        assert_eq!(plain.cost(), BASE_COST_UNITS);
        let mut small_grid = plain.clone();
        small_grid.grid = Some(GridSpec { resolution: 33 });
        let mut big_grid = plain.clone();
        big_grid.grid = Some(GridSpec {
            resolution: MAX_GRID_RESOLUTION,
        });
        assert!(small_grid.cost() > plain.cost());
        assert!(big_grid.cost() > small_grid.cost());
        assert!(
            big_grid.cost() <= DEFAULT_COST_BUDGET,
            "the production mesh tier must fit the default budget, cost {}",
            big_grid.cost()
        );
        let mut mega = plain.clone();
        mega.netlist = Some(NetlistTier {
            cells: MAX_NETLIST_CELLS,
            seed: 0,
        });
        assert!(
            mega.cost() > DEFAULT_COST_BUDGET,
            "the 10^7-cell tier must exceed the default budget, cost {}",
            mega.cost()
        );
    }

    #[test]
    fn evaluation_runs_the_validating_paths() {
        let mut spec = ScenarioSpec::at_node(TechNode::N70);
        spec.activity = 0.2;
        spec.workload_ratio = 0.5;
        spec.grid = Some(GridSpec { resolution: 17 });
        spec.netlist = Some(NetlistTier {
            cells: 400,
            seed: 3,
        });
        let report = spec.evaluate().unwrap();
        assert_eq!(report.chip.activity, 0.1, "duty-scaled activity");
        let grid = report.grid.unwrap();
        assert!(grid.mesh.0 > 0.0 && grid.analytic.0 > 0.0);
        let nl = report.netlist.unwrap();
        assert!(nl.critical.0 > 0.0 && nl.dynamic.0 > 0.0 && nl.leakage.0 > 0.0);
        let text = report.render();
        assert!(text.contains(&spec.job_name()), "{text}");
        assert!(text.contains("grid 17x17"), "{text}");
        assert!(text.contains("netlist 400 cells"), "{text}");
        let csv = report.csv();
        assert_eq!(csv.lines().count(), 2);
        let (header, row) = (
            csv.lines().next().unwrap().split(',').count(),
            csv.lines().nth(1).unwrap().split(',').count(),
        );
        assert_eq!(header, row, "csv row matches header arity");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut spec = ScenarioSpec::at_node(TechNode::N100);
        spec.netlist = Some(NetlistTier {
            cells: 300,
            seed: 9,
        });
        assert_eq!(spec.render(false).unwrap(), spec.render(false).unwrap());
        assert_eq!(spec.render(true).unwrap(), spec.render(true).unwrap());
        assert_ne!(spec.render(false).unwrap(), spec.render(true).unwrap());
    }

    #[test]
    fn chaos_hook_panics_deterministically() {
        let mut spec = ScenarioSpec::at_node(TechNode::N70);
        spec.chaos = Some("panic".into());
        let spec2 = spec.clone();
        let unwound = std::panic::catch_unwind(move || spec2.evaluate());
        assert!(unwound.is_err(), "chaos hook must panic");
        // The hook changes the digest, so quarantining it cannot shadow
        // the healthy spec.
        let mut healthy = spec.clone();
        healthy.chaos = None;
        assert_ne!(spec.digest(), healthy.digest());
    }
}
