//! The crash-safe run journal: one flushed JSON line per completed
//! artifact, so an interrupted `repro` run can resume where it died.
//!
//! # Format (`nanopower-journal/v1`)
//!
//! A journal is a JSON-lines file. The first line is a header recording
//! the run configuration the journal belongs to; every following line is
//! one completed job record:
//!
//! ```text
//! {"schema":"nanopower-journal/v1","csv":false,"names":["table1","table2"]}
//! {"artifact":"table1","status":"ok","digest":"fnv1a:…","duration_ms":0.8,"worker":0,"attempts":1,"timed_out":false,"output":"…"}
//! {"artifact":"table2","status":"error","error":"device: …","duration_ms":1.2,"worker":1,"attempts":3,"timed_out":false}
//! ```
//!
//! Three properties make it crash-safe:
//!
//! - **Append-only, flush-on-write.** [`Journal::record`] serializes the
//!   record, appends it in a single `write`, and `fsync`s the file data
//!   before returning, so a completed artifact survives `SIGKILL` the
//!   moment its worker observes it.
//! - **Truncation-tolerant tail.** A kill mid-write leaves at most one
//!   partial line at the end of the file. [`load`] parses every line it
//!   can and reports a torn tail via [`LoadedJournal::truncated_tail`]
//!   instead of failing; a malformed line *before* the tail is real
//!   corruption and is a typed [`Error::Journal`].
//! - **Self-describing.** The header pins the artifact list and output
//!   form (text vs CSV), so `repro --resume` restores the original
//!   request and refuses to resume a run under a different
//!   configuration.
//!
//! Successful records store the full output text (JSON-escaped) along
//! with its digest: replaying a journal reproduces the run's stdout
//! byte-for-byte without re-rendering, and the digest guards against a
//! corrupted output field masquerading as a completed artifact. Failed
//! records — status `error`, `cancelled`, or `drift`, the
//! [`JobRecord::status`] vocabulary — store only the error message;
//! resume re-runs them. Cancelled placeholders reach the journal like
//! any other record because the engine's `on_record` observer fires for
//! them too, so an interrupted journal accounts for every submitted
//! job.

use crate::engine::{fnv1a64, JobRecord};
use crate::error::Error;
use crate::jsonio::{self, Json};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The journal schema identifier written to (and demanded of) headers.
pub const SCHEMA: &str = "nanopower-journal/v1";

/// The run configuration a journal belongs to, pinned by the header
/// line so a resume cannot silently change the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Whether the run renders CSV forms (`repro --csv`).
    pub csv: bool,
    /// The artifact names of the run, submission order.
    pub names: Vec<String>,
}

/// One journaled record: the subset of [`JobRecord`] the journal
/// persists, with the output kept for successful jobs so replay needs no
/// recomputation.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The artifact name.
    pub name: String,
    /// The rendered output on success, the error message otherwise.
    pub outcome: Result<String, String>,
    /// `fnv1a:…` digest recorded at write time (successes only).
    pub digest: Option<String>,
    /// Wall-clock duration of the journaled record.
    pub duration: Duration,
    /// Worker that ran the job.
    pub worker: usize,
    /// Attempts the job took.
    pub attempts: u32,
    /// Whether the job's final attempt hit the policy deadline.
    pub timed_out: bool,
}

impl JournalEntry {
    /// Whether the journaled job completed successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Whether the stored output still matches the digest recorded when
    /// the entry was written — false means the journal was tampered
    /// with or corrupted in place.
    pub fn digest_matches(&self) -> bool {
        match (&self.outcome, &self.digest) {
            (Ok(text), Some(digest)) => {
                *digest == format!("fnv1a:{:016x}", fnv1a64(text.as_bytes()))
            }
            _ => false,
        }
    }

    /// Reconstructs the engine-side record this entry journaled, for
    /// merging replayed artifacts into a resumed run's report.
    pub fn to_record(&self) -> JobRecord {
        JobRecord {
            name: self.name.clone(),
            outcome: match &self.outcome {
                Ok(text) => Ok(text.clone()),
                Err(msg) => Err(Error::Journal {
                    reason: format!("journaled failure: {msg}"),
                }),
            },
            duration: self.duration,
            worker: self.worker,
            attempts: self.attempts,
            timed_out: self.timed_out,
        }
    }
}

/// An append-mode journal writer with flush-on-write semantics.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates (truncating) a journal at `path` and writes the header
    /// line for `config`.
    ///
    /// # Errors
    ///
    /// [`Error::Journal`] on any I/O failure.
    pub fn create(path: impl AsRef<Path>, config: &JournalConfig) -> Result<Self, Error> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| io_err(&path, "create", &e))?;
        let mut journal = Journal { file, path };
        journal.write_line(&header_line(config))?;
        Ok(journal)
    }

    /// Re-opens an existing journal at `path` for appending (the resume
    /// path; the header is already present). A torn tail line left by a
    /// mid-write kill is truncated away first, so the next record cannot
    /// fuse with the partial bytes into a corrupt line.
    ///
    /// # Errors
    ///
    /// [`Error::Journal`] on any I/O failure.
    pub fn append_to(path: impl AsRef<Path>) -> Result<Self, Error> {
        use std::io::Read;
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, "open", &e))?;
        let mut contents = Vec::new();
        file.read_to_end(&mut contents)
            .map_err(|e| io_err(&path, "read", &e))?;
        let keep = contents
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        if keep < contents.len() {
            // Append-mode writes always land at the (new) end of file,
            // so truncating here is all the cleanup needed.
            file.set_len(keep as u64)
                .map_err(|e| io_err(&path, "truncate", &e))?;
        }
        Ok(Journal { file, path })
    }

    /// Appends one completed record as a single JSON line and syncs file
    /// data to disk before returning.
    ///
    /// # Errors
    ///
    /// [`Error::Journal`] on any I/O failure.
    pub fn record(&mut self, record: &JobRecord) -> Result<(), Error> {
        self.write_line(&entry_line(record))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn write_line(&mut self, line: &str) -> Result<(), Error> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, "write", &e))
    }
}

/// A parsed journal: header config, every intact entry in file order,
/// and whether the file ended in a torn line.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// The run configuration from the header line.
    pub config: JournalConfig,
    /// Every parseable entry, file order. A re-run artifact (journaled
    /// as a failure, then again after resume) appears once per line.
    pub entries: Vec<JournalEntry>,
    /// Whether the final line was torn by a mid-write kill (tolerated:
    /// the line is dropped, everything before it is kept).
    pub truncated_tail: bool,
}

impl LoadedJournal {
    /// The completed (successful, digest-intact) artifacts, by name —
    /// the set `repro --resume` skips. Later lines win, so a failure
    /// journaled after a stale success does not hide it.
    pub fn completed(&self) -> HashMap<&str, &JournalEntry> {
        let mut map: HashMap<&str, &JournalEntry> = HashMap::new();
        for entry in &self.entries {
            if entry.is_ok() && entry.digest_matches() {
                map.insert(entry.name.as_str(), entry);
            } else {
                // A later failure (or corrupted success) invalidates any
                // earlier completion of the same artifact.
                map.remove(entry.name.as_str());
            }
        }
        map
    }
}

/// Loads and validates a journal file, tolerating a torn tail line.
///
/// # Errors
///
/// [`Error::Journal`] when the file cannot be read, the header is
/// missing or malformed, or a *non-tail* line fails to parse (real
/// corruption, as opposed to a mid-write kill).
pub fn load(path: impl AsRef<Path>) -> Result<LoadedJournal, Error> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, "read", &e))?;
    let mut lines = text.split_inclusive('\n');
    let header = lines.next().ok_or_else(|| Error::Journal {
        reason: format!("{}: empty journal (no header line)", path.display()),
    })?;
    if !header.ends_with('\n') {
        // The header itself was torn: nothing usable follows.
        return Err(Error::Journal {
            reason: format!("{}: header line is truncated", path.display()),
        });
    }
    let config = parse_header(header.trim_end()).map_err(|reason| Error::Journal {
        reason: format!("{}: {reason}", path.display()),
    })?;
    let mut entries = Vec::new();
    let mut truncated_tail = false;
    let rest: Vec<&str> = lines.collect();
    for (i, raw) in rest.iter().enumerate() {
        let is_tail = i + 1 == rest.len();
        let complete = raw.ends_with('\n');
        let line = raw.trim_end_matches('\n');
        if line.is_empty() {
            continue;
        }
        match parse_entry(line) {
            Ok(entry) if complete => entries.push(entry),
            // A parseable but newline-less tail still counts as torn:
            // the sync covers up to the previous newline, so the tail
            // may be a prefix of a longer intended line.
            Ok(_) => truncated_tail = true,
            Err(reason) => {
                if is_tail && !complete {
                    truncated_tail = true;
                } else {
                    return Err(Error::Journal {
                        reason: format!("{}: line {}: {reason}", path.display(), i + 2),
                    });
                }
            }
        }
    }
    Ok(LoadedJournal {
        config,
        entries,
        truncated_tail,
    })
}

fn io_err(path: &Path, op: &str, e: &std::io::Error) -> Error {
    Error::Journal {
        reason: format!("cannot {op} {}: {e}", path.display()),
    }
}

fn header_line(config: &JournalConfig) -> String {
    let names: Vec<String> = config.names.iter().map(|n| jsonio::escape(n)).collect();
    format!(
        "{{\"schema\":{},\"csv\":{},\"names\":[{}]}}",
        jsonio::escape(SCHEMA),
        config.csv,
        names.join(",")
    )
}

fn entry_line(record: &JobRecord) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"artifact\":{}", jsonio::escape(&record.name)));
    out.push_str(&format!(",\"status\":\"{}\"", record.status()));
    if let Some(digest) = record.digest() {
        out.push_str(&format!(",\"digest\":\"{digest}\""));
    }
    out.push_str(&format!(
        ",\"duration_ms\":{:.3}",
        record.duration.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(",\"worker\":{}", record.worker));
    out.push_str(&format!(",\"attempts\":{}", record.attempts));
    out.push_str(&format!(",\"timed_out\":{}", record.timed_out));
    match &record.outcome {
        Ok(text) => out.push_str(&format!(",\"output\":{}", jsonio::escape(text))),
        Err(e) => out.push_str(&format!(",\"error\":{}", jsonio::escape(&e.to_string()))),
    }
    out.push('}');
    out
}

/// Parses the line as an object with [`jsonio`], mapping any shape
/// failure to the journal's string-reason errors.
fn parse_fields(line: &str) -> Result<Json, String> {
    let value = jsonio::parse(line)?;
    if value.as_obj().is_none() {
        return Err("line is not a JSON object".into());
    }
    Ok(value)
}

fn parse_header(line: &str) -> Result<JournalConfig, String> {
    let fields = parse_fields(line)?;
    match fields.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unsupported journal schema `{s}`")),
        None => return Err("header has no schema field".into()),
    }
    let csv = fields
        .get("csv")
        .and_then(Json::as_bool)
        .ok_or("header has no csv field")?;
    let names = fields
        .get("names")
        .and_then(Json::as_arr)
        .ok_or("header has no names field")?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| "names must be strings".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(JournalConfig { csv, names })
}

fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let fields = parse_fields(line)?;
    let str_field = |key: &str| -> Result<String, String> {
        fields
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field `{key}`"))
    };
    let num_field = |key: &str| -> Result<f64, String> {
        fields
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    };
    let name = str_field("artifact")?;
    let status = str_field("status")?;
    // `ok` entries carry their output; every non-ok status (`error`,
    // `cancelled`, `drift`, `panicked` — the [`JobRecord::status`]
    // vocabulary) carries the failure message and is re-run on resume.
    let outcome = match status.as_str() {
        "ok" => Ok(str_field("output")?),
        "error" | "cancelled" | "drift" | "panicked" => Err(str_field("error")?),
        other => return Err(format!("unknown status `{other}`")),
    };
    let digest = fields
        .get("digest")
        .and_then(Json::as_str)
        .map(str::to_owned);
    let duration_ms = num_field("duration_ms")?;
    if !(duration_ms.is_finite() && duration_ms >= 0.0) {
        return Err("duration_ms must be a non-negative number".into());
    }
    let timed_out = fields
        .get("timed_out")
        .and_then(Json::as_bool)
        .ok_or("missing boolean field `timed_out`")?;
    Ok(JournalEntry {
        name,
        outcome,
        digest,
        duration: Duration::from_secs_f64(duration_ms / 1e3),
        worker: num_field("worker")? as usize,
        attempts: num_field("attempts")? as u32,
        timed_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CancelToken, Job, Session};

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "np-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample_config() -> JournalConfig {
        JournalConfig {
            csv: false,
            names: vec!["table1".into(), "fig\"quoted\"".into()],
        }
    }

    fn journal_a_run(path: &Path) -> Vec<JobRecord> {
        let jobs = vec![
            Job::new("table1", || Ok("line one\nline, two\n".into())),
            Job::new("fig\"quoted\"", || {
                Err(Error::InvalidParameter("tab\there".into()))
            }),
        ];
        let report = Session::new(jobs).workers(1).run();
        let mut journal = Journal::create(path, &sample_config()).unwrap();
        for record in &report.records {
            journal.record(record).unwrap();
        }
        report.records
    }

    #[test]
    fn round_trips_config_and_records() {
        let path = temp_path("roundtrip");
        let records = journal_a_run(&path);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.config, sample_config());
        assert!(!loaded.truncated_tail);
        assert_eq!(loaded.entries.len(), 2);
        let ok = &loaded.entries[0];
        assert_eq!(ok.name, "table1");
        assert_eq!(ok.outcome.as_deref(), Ok("line one\nline, two\n"));
        assert!(ok.digest_matches());
        assert_eq!(ok.to_record().outcome, records[0].outcome);
        let err = &loaded.entries[1];
        assert_eq!(err.name, "fig\"quoted\"");
        assert!(err.outcome.as_deref().unwrap_err().contains("tab\there"));
        assert!(!err.digest_matches(), "failures carry no digest");
        let completed = loaded.completed();
        assert!(completed.contains_key("table1"));
        assert!(!completed.contains_key("fig\"quoted\""), "failures re-run");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tolerates_a_torn_tail_at_every_offset() {
        let path = temp_path("torn");
        journal_a_run(&path);
        let bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let torn = temp_path("torn-cut");
        for cut in header_end..bytes.len() {
            std::fs::write(&torn, &bytes[..cut]).unwrap();
            let loaded = load(&torn).unwrap_or_else(|e| panic!("cut at byte {cut} must load: {e}"));
            assert!(
                loaded.entries.len() < 2 || !loaded.truncated_tail,
                "cut {cut}: full entries with torn tail is contradictory"
            );
            // Whatever loads must be intact — a torn line never
            // produces a wrong entry, only a missing one.
            for entry in loaded.entries.iter().filter(|e| e.is_ok()) {
                assert!(entry.digest_matches(), "cut {cut}: corrupt entry kept");
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&torn).ok();
    }

    #[test]
    fn torn_header_is_an_error() {
        let path = temp_path("torn-header");
        std::fs::write(&path, "{\"schema\":\"nanopower-journal/v1\",\"cs").unwrap();
        let err = load(&path).unwrap_err();
        assert!(matches!(err, Error::Journal { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_middle_line_is_an_error_not_a_skip() {
        let path = temp_path("corrupt-middle");
        journal_a_run(&path);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let garbled = format!("{}GARBAGE", lines[1]);
        lines[1] = &garbled;
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let err = load(&path).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 2"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn later_failure_invalidates_earlier_success() {
        let path = temp_path("supersede");
        let mut journal = Journal::create(&path, &sample_config()).unwrap();
        let ok = JobRecord {
            name: "table1".into(),
            outcome: Ok("v1\n".into()),
            duration: Duration::from_millis(1),
            worker: 0,
            attempts: 1,
            timed_out: false,
        };
        journal.record(&ok).unwrap();
        journal
            .record(&JobRecord {
                outcome: Err(Error::Panic("later crash".into())),
                ..ok.clone()
            })
            .unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert!(
            !loaded.completed().contains_key("table1"),
            "latest line wins"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_to_continues_an_existing_journal() {
        let path = temp_path("append");
        journal_a_run(&path);
        let mut journal = Journal::append_to(&path).unwrap();
        journal
            .record(&JobRecord {
                name: "fig\"quoted\"".into(),
                outcome: Ok("recovered on resume\n".into()),
                duration: Duration::from_millis(2),
                worker: 0,
                attempts: 1,
                timed_out: false,
            })
            .unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 3);
        let completed = loaded.completed();
        assert_eq!(completed.len(), 2, "resume completed the failed one");
        assert_eq!(
            completed["fig\"quoted\""].outcome.as_deref(),
            Ok("recovered on resume\n")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_to_truncates_a_torn_tail_before_writing() {
        let path = temp_path("append-torn");
        journal_a_run(&path);
        // Simulate a mid-write kill: leave half of a new entry line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"artifact\":\"fig1\",\"sta");
        std::fs::write(&path, &bytes).unwrap();
        let mut journal = Journal::append_to(&path).unwrap();
        journal
            .record(&JobRecord {
                name: "fig1".into(),
                outcome: Ok("after resume\n".into()),
                duration: Duration::from_millis(1),
                worker: 0,
                attempts: 1,
                timed_out: false,
            })
            .unwrap();
        // Without the truncation the torn bytes fuse with the new record
        // into a corrupt middle line and this load fails.
        let loaded = load(&path).unwrap();
        assert!(!loaded.truncated_tail);
        assert_eq!(loaded.entries.len(), 3);
        assert_eq!(loaded.entries[2].outcome.as_deref(), Ok("after resume\n"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cancelled_run_journals_placeholder_records() {
        use std::sync::{Arc, Mutex, PoisonError};
        let path = temp_path("cancelled");
        let config = JournalConfig {
            csv: false,
            names: vec!["a".into(), "b".into()],
        };
        let journal = Arc::new(Mutex::new(Journal::create(&path, &config).unwrap()));
        let sink = Arc::clone(&journal);
        let token = CancelToken::new();
        token.cancel();
        let jobs = vec![
            Job::new("a", || Ok("never runs\n".into())),
            Job::new("b", || Ok("never runs\n".into())),
        ];
        let report = Session::new(jobs)
            .workers(1)
            .cancel(token)
            .on_record(move |_, record| {
                sink.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record(record)
                    .unwrap();
            })
            .run();
        assert!(report.interrupted);
        drop(journal);
        // The journal covers both never-started jobs with typed
        // cancelled entries, and neither counts as completed.
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        for entry in &loaded.entries {
            assert!(!entry.is_ok());
            assert!(
                entry.outcome.as_deref().unwrap_err().contains("cancelled"),
                "{:?}",
                entry.outcome
            );
        }
        assert!(loaded.completed().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_output_fails_the_digest_check() {
        let path = temp_path("tamper");
        journal_a_run(&path);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("line one", "line 0ne");
        std::fs::write(&path, text).unwrap();
        let loaded = load(&path).unwrap();
        assert!(!loaded.entries[0].digest_matches());
        assert!(
            !loaded.completed().contains_key("table1"),
            "tampered entries are not treated as completed"
        );
        std::fs::remove_file(&path).ok();
    }
}
