//! The workspace-level error type.
//!
//! Every model crate keeps its own precise error enum (`DeviceError`,
//! `GridError`, …) so library callers can match on exactly what failed;
//! [`Error`] is the top of that hierarchy for code that drives several
//! models at once — the `Chip` facade, the `repro` harness, the engine,
//! and the examples — replacing the former `Box<dyn std::error::Error>`
//! signatures with a typed, matchable enum.

use np_circuit::CircuitError;
use np_device::DeviceError;
use np_grid::GridError;
use np_interconnect::InterconnectError;
use np_opt::OptError;
use np_thermal::ThermalError;
use np_units::math::SolveError;
use std::fmt;

/// The unified workspace error: one variant per model-crate error type,
/// plus the facade-level failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A device-model failure (`np-device`).
    Device(DeviceError),
    /// A netlist/timing/power failure (`np-circuit`).
    Circuit(CircuitError),
    /// An interconnect-model failure (`np-interconnect`).
    Interconnect(InterconnectError),
    /// A thermal-model failure (`np-thermal`).
    Thermal(ThermalError),
    /// A power-grid failure (`np-grid`).
    Grid(GridError),
    /// An optimizer failure (`np-opt`).
    Opt(OptError),
    /// A bare numerical-solver failure (`np-units`).
    Solve(SolveError),
    /// A facade- or harness-level parameter is out of range (documented
    /// in the message).
    InvalidParameter(String),
    /// A request named an artifact the registry does not contain.
    UnknownArtifact {
        /// The unmatched name.
        name: String,
    },
    /// A request asked an artifact for an output form it cannot produce
    /// (e.g. CSV from a text-only experiment).
    UnsupportedOutput {
        /// The artifact asked.
        artifact: String,
        /// The output form requested, e.g. `"csv"`.
        format: &'static str,
    },
    /// A job panicked inside the engine; the payload message is preserved
    /// so the run report can show it like any other failure.
    Panic(String),
    /// A job attempt outlived the engine policy's per-job deadline and was
    /// abandoned by the watchdog.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        limit: std::time::Duration,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Device(e) => write!(f, "device: {e}"),
            Error::Circuit(e) => write!(f, "circuit: {e}"),
            Error::Interconnect(e) => write!(f, "interconnect: {e}"),
            Error::Thermal(e) => write!(f, "thermal: {e}"),
            Error::Grid(e) => write!(f, "grid: {e}"),
            Error::Opt(e) => write!(f, "optimizer: {e}"),
            Error::Solve(e) => write!(f, "solver: {e}"),
            Error::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            Error::UnknownArtifact { name } => {
                write!(f, "unknown artifact `{name}` (try --list)")
            }
            Error::UnsupportedOutput { artifact, format } => {
                write!(f, "artifact `{artifact}` has no {format} form")
            }
            Error::Panic(m) => write!(f, "panicked: {m}"),
            Error::DeadlineExceeded { limit } => {
                write!(
                    f,
                    "deadline exceeded: job ran past {:.3}s",
                    limit.as_secs_f64()
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Device(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Interconnect(e) => Some(e),
            Error::Thermal(e) => Some(e),
            Error::Grid(e) => Some(e),
            Error::Opt(e) => Some(e),
            Error::Solve(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_model_error {
    ($($source:ty => $variant:ident),* $(,)?) => {$(
        impl From<$source> for Error {
            fn from(e: $source) -> Self {
                Error::$variant(e)
            }
        }
    )*};
}

from_model_error! {
    DeviceError => Device,
    CircuitError => Circuit,
    InterconnectError => Interconnect,
    ThermalError => Thermal,
    GridError => Grid,
    OptError => Opt,
    SolveError => Solve,
}

/// Workspace-level result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_error_converts_and_chains() {
        use std::error::Error as _;
        let cases: Vec<Error> = vec![
            DeviceError::BadParameter("d").into(),
            CircuitError::EmptyNetlist.into(),
            InterconnectError::BadParameter("i").into(),
            ThermalError::BadParameter("t").into(),
            GridError::BadParameter("g").into(),
            OptError::BadParameter("o").into(),
            SolveError::BadArguments("s").into(),
        ];
        for e in cases {
            assert!(e.source().is_some(), "{e} should chain to its source");
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn harness_variants_display() {
        let e = Error::UnknownArtifact {
            name: "fig9".into(),
        };
        assert!(format!("{e}").contains("fig9"));
        let e = Error::UnsupportedOutput {
            artifact: "dtm".into(),
            format: "csv",
        };
        assert!(format!("{e}").contains("no csv form"));
        assert!(format!("{}", Error::InvalidParameter("x".into())).contains("x"));
    }
}
