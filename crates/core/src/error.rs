//! The workspace-level error type.
//!
//! Every model crate keeps its own precise error enum (`DeviceError`,
//! `GridError`, …) so library callers can match on exactly what failed;
//! [`Error`] is the top of that hierarchy for code that drives several
//! models at once — the `Chip` facade, the `repro` harness, the engine,
//! and the examples — replacing the former `Box<dyn std::error::Error>`
//! signatures with a typed, matchable enum.

use np_circuit::CircuitError;
use np_device::DeviceError;
use np_grid::GridError;
use np_interconnect::InterconnectError;
use np_opt::OptError;
use np_thermal::ThermalError;
use np_units::math::SolveError;
use std::fmt;

/// The unified workspace error: one variant per model-crate error type,
/// plus the facade-level failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A device-model failure (`np-device`).
    Device(DeviceError),
    /// A netlist/timing/power failure (`np-circuit`).
    Circuit(CircuitError),
    /// An interconnect-model failure (`np-interconnect`).
    Interconnect(InterconnectError),
    /// A thermal-model failure (`np-thermal`).
    Thermal(ThermalError),
    /// A power-grid failure (`np-grid`).
    Grid(GridError),
    /// An optimizer failure (`np-opt`).
    Opt(OptError),
    /// A bare numerical-solver failure (`np-units`).
    Solve(SolveError),
    /// A facade- or harness-level parameter is out of range (documented
    /// in the message).
    InvalidParameter(String),
    /// A request named an artifact the registry does not contain.
    UnknownArtifact {
        /// The unmatched name.
        name: String,
    },
    /// A request asked an artifact for an output form it cannot produce
    /// (e.g. CSV from a text-only experiment).
    UnsupportedOutput {
        /// The artifact asked.
        artifact: String,
        /// The output form requested, e.g. `"csv"`.
        format: &'static str,
    },
    /// A job panicked inside the engine; the payload message is preserved
    /// so the run report can show it like any other failure.
    Panic(String),
    /// A job attempt outlived the engine policy's per-job deadline and was
    /// abandoned by the watchdog.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        limit: std::time::Duration,
    },
    /// The run was cancelled before this job started; the record is a
    /// placeholder so interrupted reports still cover every submitted
    /// job.
    Cancelled,
    /// Reading or writing the crash-safe run journal failed (I/O error,
    /// corrupt non-tail line, or a config mismatch between the journal
    /// header and the resuming invocation).
    Journal {
        /// What went wrong, including the offending path or line.
        reason: String,
    },
    /// A service request or response line does not follow the
    /// `nanopowerd/v1` JSON-lines protocol ([`crate::proto`]). The
    /// daemon answers with a typed protocol-error response instead of
    /// dropping the connection.
    Protocol {
        /// What was malformed about the line.
        reason: String,
    },
    /// A scenario spec ([`crate::spec::ScenarioSpec`]) failed
    /// validation: an unknown key, an out-of-range value, a non-finite
    /// number, or a wrong type. Always names the offending field so an
    /// untrusted client gets an actionable, typed rejection — never a
    /// generic protocol error.
    InvalidSpec {
        /// The offending spec field (dotted path, e.g. `grid.resolution`).
        field: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// An artifact's output deviates from its golden reference beyond
    /// the artifact's tolerance policy. Carries per-cell diagnostics so
    /// the drift can be located without re-running anything.
    Drift {
        /// The drifting artifact's name.
        artifact: String,
        /// The tolerance policy the comparison ran under (e.g.
        /// `relative(1e-9)`).
        policy: String,
        /// Total number of drifting cells found.
        total: usize,
        /// The first few drifting cells (diagnostics are truncated so a
        /// wholesale drift does not balloon the error).
        cells: Vec<DriftCell>,
    },
}

/// One cell-level deviation inside an [`Error::Drift`]: where the actual
/// output left the golden reference, and by how much.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCell {
    /// 1-based line number in the artifact output.
    pub row: usize,
    /// 1-based column (CSV field) number; always 1 for line-oriented
    /// (non-CSV) comparisons.
    pub col: usize,
    /// The golden reference value (`<missing>` when the actual output
    /// has extra rows/cells).
    pub expected: String,
    /// The actual value (`<missing>` when the actual output is short).
    pub actual: String,
    /// `|actual - expected|` when both cells parse as numbers, `NaN`
    /// otherwise.
    pub delta: f64,
}

impl fmt::Display for DriftCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {} col {}: expected `{}`, got `{}`",
            self.row, self.col, self.expected, self.actual
        )?;
        if self.delta.is_finite() {
            write!(f, " (|delta| = {:.3e})", self.delta)?;
        }
        Ok(())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Device(e) => write!(f, "device: {e}"),
            Error::Circuit(e) => write!(f, "circuit: {e}"),
            Error::Interconnect(e) => write!(f, "interconnect: {e}"),
            Error::Thermal(e) => write!(f, "thermal: {e}"),
            Error::Grid(e) => write!(f, "grid: {e}"),
            Error::Opt(e) => write!(f, "optimizer: {e}"),
            Error::Solve(e) => write!(f, "solver: {e}"),
            Error::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            Error::UnknownArtifact { name } => {
                write!(f, "unknown artifact `{name}` (try --list)")
            }
            Error::UnsupportedOutput { artifact, format } => {
                write!(f, "artifact `{artifact}` has no {format} form")
            }
            Error::Panic(m) => write!(f, "panicked: {m}"),
            Error::DeadlineExceeded { limit } => {
                write!(
                    f,
                    "deadline exceeded: job ran past {:.3}s",
                    limit.as_secs_f64()
                )
            }
            Error::Cancelled => write!(f, "cancelled before the job started"),
            Error::Journal { reason } => write!(f, "journal: {reason}"),
            Error::Protocol { reason } => write!(f, "protocol: {reason}"),
            Error::InvalidSpec { field, reason } => {
                write!(f, "invalid spec: field `{field}`: {reason}")
            }
            Error::Drift {
                artifact,
                policy,
                total,
                cells,
            } => {
                write!(
                    f,
                    "drift: artifact `{artifact}` deviates from its golden reference \
                     in {total} cell(s) under {policy}"
                )?;
                for cell in cells {
                    write!(f, "; {cell}")?;
                }
                if *total > cells.len() {
                    write!(f, "; … {} more", total - cells.len())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Device(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Interconnect(e) => Some(e),
            Error::Thermal(e) => Some(e),
            Error::Grid(e) => Some(e),
            Error::Opt(e) => Some(e),
            Error::Solve(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_model_error {
    ($($source:ty => $variant:ident),* $(,)?) => {$(
        impl From<$source> for Error {
            fn from(e: $source) -> Self {
                Error::$variant(e)
            }
        }
    )*};
}

from_model_error! {
    DeviceError => Device,
    CircuitError => Circuit,
    InterconnectError => Interconnect,
    ThermalError => Thermal,
    GridError => Grid,
    OptError => Opt,
    SolveError => Solve,
}

/// Workspace-level result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_error_converts_and_chains() {
        use std::error::Error as _;
        let cases: Vec<Error> = vec![
            DeviceError::BadParameter("d").into(),
            CircuitError::EmptyNetlist.into(),
            InterconnectError::BadParameter("i").into(),
            ThermalError::BadParameter("t").into(),
            GridError::BadParameter("g").into(),
            OptError::BadParameter("o").into(),
            SolveError::BadArguments("s").into(),
        ];
        for e in cases {
            assert!(e.source().is_some(), "{e} should chain to its source");
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn harness_variants_display() {
        let e = Error::UnknownArtifact {
            name: "fig9".into(),
        };
        assert!(format!("{e}").contains("fig9"));
        let e = Error::UnsupportedOutput {
            artifact: "dtm".into(),
            format: "csv",
        };
        assert!(format!("{e}").contains("no csv form"));
        assert!(format!("{}", Error::InvalidParameter("x".into())).contains("x"));
    }

    #[test]
    fn resilience_variants_display() {
        assert!(format!("{}", Error::Cancelled).contains("cancelled"));
        let e = Error::Journal {
            reason: "corrupt line 3".into(),
        };
        assert!(format!("{e}").contains("corrupt line 3"));
        let e = Error::Protocol {
            reason: "unknown request `runn`".into(),
        };
        assert!(format!("{e}").contains("unknown request `runn`"));
        let e = Error::InvalidSpec {
            field: "grid.resolution".into(),
            reason: "must be an integer in [5, 1025]".into(),
        };
        let msg = format!("{e}");
        assert!(msg.contains("`grid.resolution`"), "{msg}");
        assert!(msg.contains("[5, 1025]"), "{msg}");
        let e = Error::Drift {
            artifact: "fig5".into(),
            policy: "relative(1e-9)".into(),
            total: 3,
            cells: vec![DriftCell {
                row: 2,
                col: 4,
                expected: "0.125".into(),
                actual: "0.126".into(),
                delta: 1e-3,
            }],
        };
        let msg = format!("{e}");
        assert!(msg.contains("fig5"), "{msg}");
        assert!(msg.contains("3 cell(s)"), "{msg}");
        assert!(msg.contains("line 2 col 4"), "{msg}");
        assert!(msg.contains("… 2 more"), "{msg}");
    }
}
