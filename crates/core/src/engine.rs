//! The parallel artifact engine: a work-queue runner with per-run
//! telemetry.
//!
//! Motivated by the concurrent power/thermal-evaluation workloads of the
//! related literature (Rosselló et al.; Atienza et al.), this module
//! turns a list of named jobs — closures producing text — into a
//! [`RunReport`] by fanning them out over `N` worker threads from
//! [`std::thread::scope`]. Three guarantees shape the design:
//!
//! 1. **Determinism.** Jobs are claimed from a shared queue in submission
//!    order, but results are stored back by job index, so
//!    [`RunReport::records`] — and anything rendered from it — is
//!    byte-identical no matter how many workers ran or how they
//!    interleaved. Only the telemetry (durations, worker attribution)
//!    varies between runs.
//! 2. **Failure isolation.** A job that returns an error — or panics —
//!    marks its own record and the engine keeps going; the summary and
//!    exit status report the damage at the end instead of aborting on the
//!    first failure.
//! 3. **Observability.** Every record carries wall-clock duration, the
//!    worker that ran it, and an FNV-1a digest of its output;
//!    [`RunReport::to_json`] emits the whole run as a machine-readable
//!    report for tracking performance trajectory across commits.

use crate::error::Error;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One unit of work: a named closure producing rendered text.
pub struct Job {
    name: String,
    runner: Box<dyn FnOnce() -> Result<String, Error> + Send>,
}

impl Job {
    /// Wraps a closure as a named job.
    pub fn new(
        name: impl Into<String>,
        runner: impl FnOnce() -> Result<String, Error> + Send + 'static,
    ) -> Self {
        Job {
            name: name.into(),
            runner: Box::new(runner),
        }
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Telemetry and outcome for one executed [`Job`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's name.
    pub name: String,
    /// Rendered output on success, the error otherwise (panics are
    /// converted to [`Error::Panic`]).
    pub outcome: Result<String, Error>,
    /// Wall-clock time the job took.
    pub duration: Duration,
    /// Index of the worker thread (0-based) that ran the job.
    pub worker: usize,
}

impl JobRecord {
    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// `fnv1a:<16 hex digits>` digest of the output, when the job
    /// succeeded — cheap fingerprint for spotting output drift between
    /// runs without storing the text.
    pub fn digest(&self) -> Option<String> {
        self.outcome
            .as_ref()
            .ok()
            .map(|s| format!("fnv1a:{:016x}", fnv1a64(s.as_bytes())))
    }
}

/// The result of one engine run: every record in submission order plus
/// run-level telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-job records, in the order the jobs were submitted (never in
    /// completion order — see the module's determinism guarantee).
    pub records: Vec<JobRecord>,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub total_wall: Duration,
}

impl RunReport {
    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(JobRecord::is_ok)
    }

    /// The records that failed, submission order.
    pub fn failures(&self) -> Vec<&JobRecord> {
        self.records.iter().filter(|r| !r.is_ok()).collect()
    }

    /// A one-line-per-failure summary, empty string when all succeeded.
    pub fn error_summary(&self) -> String {
        let failures = self.failures();
        if failures.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "{} of {} artifacts failed:\n",
            failures.len(),
            self.records.len()
        );
        for r in failures {
            let err = r.outcome.as_ref().expect_err("failure record");
            out.push_str(&format!("  {}: {err}\n", r.name));
        }
        out
    }

    /// The machine-readable run report (see DESIGN.md §"Run-report JSON
    /// schema"): per-artifact status, duration, worker, and output digest,
    /// plus run-level worker count and wall-clock.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-run-report/v1\",\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"total_ms\": {:.3},\n",
            self.total_wall.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("  \"failures\": {},\n", self.failures().len()));
        out.push_str("  \"artifacts\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"artifact\": {}, ", json_string(&r.name)));
            out.push_str(&format!(
                "\"status\": \"{}\", ",
                if r.is_ok() { "ok" } else { "error" }
            ));
            out.push_str(&format!(
                "\"duration_ms\": {:.3}, ",
                r.duration.as_secs_f64() * 1e3
            ));
            out.push_str(&format!("\"worker\": {}", r.worker));
            match &r.outcome {
                Ok(text) => {
                    out.push_str(&format!(", \"bytes\": {}", text.len()));
                    out.push_str(&format!(
                        ", \"digest\": {}",
                        json_string(&r.digest().expect("ok record digests"))
                    ));
                }
                Err(e) => out.push_str(&format!(", \"error\": {}", json_string(&e.to_string()))),
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs `jobs` across `workers` threads and collects the report.
///
/// `workers` is clamped to `1..=jobs.len()` (an empty job list returns an
/// empty report without spawning). With `workers == 1` the jobs run
/// strictly in submission order on one spawned worker — the serial
/// reference that parallel runs are byte-identical to.
pub fn run(jobs: Vec<Job>, workers: usize) -> RunReport {
    let total = jobs.len();
    let start = Instant::now();
    if total == 0 {
        return RunReport {
            records: Vec::new(),
            workers: 0,
            total_wall: start.elapsed(),
        };
    }
    let workers = workers.clamp(1, total);
    // Slots the workers take jobs from; `next` hands out indices in
    // submission order.
    let queue: Mutex<(usize, Vec<Option<Job>>)> =
        Mutex::new((0, jobs.into_iter().map(Some).collect()));
    let records: Mutex<Vec<Option<JobRecord>>> = Mutex::new((0..total).map(|_| None).collect());

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queue = &queue;
            let records = &records;
            scope.spawn(move || loop {
                let (index, job) = {
                    let mut q = queue.lock().expect("queue lock");
                    let index = q.0;
                    if index >= total {
                        return;
                    }
                    q.0 += 1;
                    (index, q.1[index].take().expect("job claimed once"))
                };
                let job_start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(job.runner))
                    .unwrap_or_else(|p| Err(Error::Panic(panic_message(p.as_ref()))));
                let record = JobRecord {
                    name: job.name,
                    outcome,
                    duration: job_start.elapsed(),
                    worker,
                };
                records.lock().expect("records lock")[index] = Some(record);
            });
        }
    });

    let records = records
        .into_inner()
        .expect("records lock")
        .into_iter()
        .map(|r| r.expect("every job produces a record"))
        .collect();
    RunReport {
        records,
        workers,
        total_wall: start.elapsed(),
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// FNV-1a, 64-bit: the digest backing [`JobRecord::digest`].
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job::new(format!("job{i}"), move || Ok(format!("output {i}\n"))))
            .collect()
    }

    #[test]
    fn parallel_order_matches_serial() {
        let serial = run(fixed_jobs(12), 1);
        let parallel = run(fixed_jobs(12), 4);
        let texts = |r: &RunReport| -> Vec<String> {
            r.records
                .iter()
                .map(|j| j.outcome.clone().unwrap())
                .collect()
        };
        assert_eq!(texts(&serial), texts(&parallel));
        assert_eq!(parallel.workers, 4);
        assert!(parallel.all_ok());
    }

    #[test]
    fn failures_do_not_stop_the_run() {
        let jobs = vec![
            Job::new("good", || Ok("fine\n".into())),
            Job::new("bad", || Err(Error::InvalidParameter("broken".into()))),
            Job::new("panicky", || panic!("boom")),
            Job::new("after", || Ok("still ran\n".into())),
        ];
        let report = run(jobs, 2);
        assert_eq!(report.records.len(), 4);
        assert!(!report.all_ok());
        assert_eq!(report.failures().len(), 2);
        assert!(report.records[3].is_ok(), "jobs after a failure still run");
        let summary = report.error_summary();
        assert!(summary.contains("2 of 4"), "{summary}");
        assert!(
            summary.contains("boom"),
            "panic message surfaces: {summary}"
        );
    }

    #[test]
    fn worker_attribution_and_clamping() {
        let report = run(fixed_jobs(3), 64);
        assert_eq!(report.workers, 3, "workers clamp to job count");
        assert!(report.records.iter().all(|r| r.worker < 3));
        let report = run(fixed_jobs(3), 0);
        assert_eq!(report.workers, 1, "zero workers clamp to one");
    }

    #[test]
    fn empty_run_is_empty() {
        let report = run(Vec::new(), 8);
        assert!(report.records.is_empty());
        assert_eq!(report.workers, 0);
        assert!(report.all_ok());
        assert!(report.error_summary().is_empty());
    }

    #[test]
    fn digests_fingerprint_output() {
        let a = run(fixed_jobs(2), 1);
        let b = run(fixed_jobs(2), 2);
        assert_eq!(a.records[0].digest(), b.records[0].digest());
        assert_ne!(a.records[0].digest(), a.records[1].digest());
        assert!(a.records[0].digest().unwrap().starts_with("fnv1a:"));
    }

    #[test]
    fn json_report_shape() {
        let jobs = vec![
            Job::new("ok\"quote", || Ok("text".into())),
            Job::new("bad", || Err(Error::InvalidParameter("x\ny".into()))),
        ];
        let json = run(jobs, 2).to_json();
        assert!(json.contains("\"schema\": \"nanopower-run-report/v1\""));
        assert!(json.contains("\"artifact\": \"ok\\\"quote\""), "{json}");
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"status\": \"error\""));
        assert!(json.contains("\\n"), "newlines escaped in error strings");
        assert!(json.contains("\"failures\": 1"));
        assert!(json.contains("\"duration_ms\""));
        assert!(json.contains("\"digest\": \"fnv1a:"));
    }
}
