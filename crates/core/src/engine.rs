//! The parallel artifact engine: a work-queue runner with per-run
//! telemetry, deadlines, and bounded retries.
//!
//! Motivated by the concurrent power/thermal-evaluation workloads of the
//! related literature (Rosselló et al.; Atienza et al.), this module
//! turns a list of named jobs — closures producing text — into a
//! [`RunReport`] by fanning them out over `N` worker threads from
//! [`std::thread::scope`]. Four guarantees shape the design:
//!
//! 1. **Determinism.** Jobs are claimed from a shared queue in submission
//!    order, but results are stored back by job index, so
//!    [`RunReport::records`] — and anything rendered from it — is
//!    byte-identical no matter how many workers ran or how they
//!    interleaved. Only the telemetry (durations, worker attribution,
//!    attempt counts) varies between runs.
//! 2. **Failure isolation.** A job that returns an error — or panics —
//!    marks its own record and the engine keeps going; the summary and
//!    exit status report the damage at the end instead of aborting on the
//!    first failure.
//! 3. **Bounded waiting.** A [`RunPolicy`] deadline puts a watchdog on
//!    every job: an attempt that outlives the deadline is recorded as
//!    [`Error::DeadlineExceeded`] and the worker moves on — one hung
//!    model cannot stall the queue. (The abandoned attempt finishes on a
//!    detached thread and its result is discarded.)
//! 4. **Observability.** Every record carries wall-clock duration, the
//!    worker that ran it, the number of attempts, whether the deadline
//!    fired, and an FNV-1a digest of its output; [`RunReport::to_json`]
//!    emits the whole run as a machine-readable report for tracking
//!    performance trajectory across commits.
//! 5. **Graceful interruption.** A [`Session`] accepts a
//!    [`CancelToken`] and an `on_record` observer: cancellation drains
//!    in-flight jobs instead of tearing them down mid-solve, marks
//!    never-started jobs [`Error::Cancelled`], and flags the report
//!    [`RunReport::interrupted`]; the observer fires as each record
//!    becomes final — including the `Cancelled` placeholder records of
//!    jobs a cancelled run never started — which is what the crash-safe
//!    run journal ([`crate::journal`]) and the `nanopowerd` service
//!    response stream both append from.
//!
//! The single entry point is the [`Session`] builder:
//!
//! ```
//! use nanopower::engine::{Job, Session};
//!
//! let jobs = vec![Job::new("greet", || Ok("hello\n".into()))];
//! let report = Session::new(jobs).workers(2).run();
//! assert!(report.all_ok());
//! ```
//!
//! The former free functions `run` / `run_with_policy` /
//! `run_with_hooks` survive as deprecated wrappers for one release.
//!
//! Retries are opt-in per job: only jobs flagged
//! [`Job::transient`] are re-attempted (with doubling backoff), because a
//! deterministic model failure will fail identically every time —
//! retrying it only burns wall-clock. A deadline-exceeded attempt is
//! terminal even for transient jobs, so a hung job costs at most one
//! deadline, not `retries + 1` of them.

use crate::error::Error;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A cooperative cancellation token shared between the engine and its
/// caller.
///
/// Cancellation is *graceful*: workers stop claiming new jobs, in-flight
/// attempts drain to completion (bounded by the policy deadline when one
/// is set), and jobs that never started are recorded as
/// [`Error::Cancelled`] so the report still covers every submitted job —
/// marked [`RunReport::interrupted`]. The token also reaches the retry
/// loop and the deadline watchdog: a cancelled run skips further retries
/// and their backoff sleeps instead of prolonging the drain.
///
/// Clones share the same flag, so the caller can hand one clone to a
/// signal handler thread and another to [`Session::cancel`].
///
/// # Examples
///
/// ```
/// use nanopower::engine::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A completion observer: called with `(submission_index, record)` the
/// moment a job's record becomes final.
pub type RecordObserver = Arc<dyn Fn(usize, &JobRecord) + Send + Sync>;

/// Optional per-run hooks for a [`Session`]: a cancellation token and a
/// completion observer. Usually set through the [`Session::cancel`] and
/// [`Session::on_record`] conveniences; pass a whole `RunHooks` via
/// [`Session::hooks`] when both come from one place.
///
/// The observer (`on_record`) fires on the worker thread as soon as a
/// job's record is final — success or failure — *before* the run
/// finishes. This is what the crash-safe journal hangs off: each
/// completed artifact is persisted the moment it exists, so a kill at
/// any point loses at most the in-flight jobs.
#[derive(Clone, Default)]
pub struct RunHooks {
    /// Checked by workers between jobs, by the retry loop between
    /// attempts, and by the deadline watchdog while waiting.
    pub cancel: Option<CancelToken>,
    /// Called with `(submission_index, record)` when a job's record is
    /// final. Invoked concurrently from worker threads; the callee
    /// serializes (the journal holds its writer behind a mutex).
    pub on_record: Option<RecordObserver>,
}

impl std::fmt::Debug for RunHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field("cancel", &self.cancel)
            .field("on_record", &self.on_record.as_ref().map(|_| "Fn"))
            .finish()
    }
}

/// One unit of work: a named closure producing rendered text.
///
/// The runner is an `Fn` behind an [`Arc`] (not `FnOnce`) so the engine
/// can re-invoke it on retry and hand a clone to the deadline watchdog's
/// sacrificial thread.
pub struct Job {
    name: String,
    runner: Arc<dyn Fn() -> Result<String, Error> + Send + Sync>,
    transient: bool,
}

impl Job {
    /// Wraps a closure as a named job.
    pub fn new(
        name: impl Into<String>,
        runner: impl Fn() -> Result<String, Error> + Send + Sync + 'static,
    ) -> Self {
        Job {
            name: name.into(),
            runner: Arc::new(runner),
            transient: false,
        }
    }

    /// Marks the job's failures as transient: under a [`RunPolicy`] with
    /// `retries > 0`, a failed (errored or panicked — but not timed-out)
    /// attempt is retried with backoff instead of recorded immediately.
    pub fn transient(mut self, transient: bool) -> Self {
        self.transient = transient;
        self
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether failures of this job are flagged as transient.
    pub fn is_transient(&self) -> bool {
        self.transient
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("transient", &self.transient)
            .finish_non_exhaustive()
    }
}

/// Failure-handling policy for one engine run.
///
/// # Examples
///
/// ```
/// use nanopower::engine::{Job, RunPolicy, Session};
/// use std::time::Duration;
///
/// let policy = RunPolicy {
///     deadline: Some(Duration::from_secs(30)),
///     retries: 2,
///     ..RunPolicy::default()
/// };
/// let jobs = vec![Job::new("quick", || Ok("done\n".into()))];
/// let report = Session::new(jobs).workers(1).policy(policy).run();
/// assert!(report.all_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPolicy {
    /// Per-attempt wall-clock budget. `None` waits forever (the
    /// pre-policy behavior).
    pub deadline: Option<Duration>,
    /// Extra attempts granted to jobs flagged [`Job::transient`]. Zero
    /// disables retries for everyone.
    pub retries: u32,
    /// Sleep before the first retry; doubles on each further retry.
    pub backoff: Duration,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            deadline: None,
            retries: 0,
            backoff: Duration::from_millis(25),
        }
    }
}

impl RunPolicy {
    /// Attempts a job is allowed under this policy.
    fn max_attempts(&self, job_is_transient: bool) -> u32 {
        if job_is_transient {
            self.retries.saturating_add(1)
        } else {
            1
        }
    }

    /// Backoff before retry number `retry` (1-based), doubling each time.
    fn backoff_before(&self, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(16);
        self.backoff.saturating_mul(1u32 << doublings)
    }
}

/// Telemetry and outcome for one executed [`Job`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's name.
    pub name: String,
    /// Rendered output on success, the error otherwise (panics are
    /// converted to [`Error::Panic`], watchdog expiries to
    /// [`Error::DeadlineExceeded`]).
    pub outcome: Result<String, Error>,
    /// Wall-clock time the job took, across all attempts (including
    /// backoff sleeps).
    pub duration: Duration,
    /// Index of the worker thread (0-based) that ran the job.
    pub worker: usize,
    /// Number of attempts executed (1 unless the job was transient and
    /// retried).
    pub attempts: u32,
    /// Whether the final attempt was cut off by the policy deadline.
    pub timed_out: bool,
}

impl JobRecord {
    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// `fnv1a:<16 hex digits>` digest of the output, when the job
    /// succeeded — cheap fingerprint for spotting output drift between
    /// runs without storing the text.
    pub fn digest(&self) -> Option<String> {
        self.outcome
            .as_ref()
            .ok()
            .map(|s| format!("fnv1a:{:016x}", fnv1a64(s.as_bytes())))
    }

    /// The record's report status: `ok`, `drift` (quarantined by the
    /// golden gate), `cancelled` (never started before an interrupt),
    /// `panicked` (the job unwound and was caught by the engine's
    /// panic guard — distinguishable from an ordinary typed failure so
    /// service layers can quarantine the offending input), or `error`.
    pub fn status(&self) -> &'static str {
        match &self.outcome {
            Ok(_) => "ok",
            Err(Error::Drift { .. }) => "drift",
            Err(Error::Cancelled) => "cancelled",
            Err(Error::Panic(_)) => "panicked",
            Err(_) => "error",
        }
    }
}

/// The result of one engine run: every record in submission order plus
/// run-level telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-job records, in the order the jobs were submitted (never in
    /// completion order — see the module's determinism guarantee).
    pub records: Vec<JobRecord>,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Wall-clock time of the whole run.
    pub total_wall: Duration,
    /// Aggregated [`np_telemetry`] summary — counters, value statistics,
    /// and per-span wall time from every instrumented path the run
    /// touched (engine lifecycle and the model solvers underneath).
    /// `None` unless a collector was installed on the calling thread
    /// when the run started.
    pub telemetry: Option<np_telemetry::Summary>,
    /// Whether the run was cancelled before every job completed. Jobs
    /// that never started carry [`Error::Cancelled`] records.
    pub interrupted: bool,
    /// Records replayed from a crash-safe journal instead of executed
    /// (always 0 for a direct engine run; the `repro --resume` merge
    /// sets it).
    pub replayed: usize,
}

impl RunReport {
    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(JobRecord::is_ok)
    }

    /// The records that failed, submission order.
    pub fn failures(&self) -> Vec<&JobRecord> {
        self.records.iter().filter(|r| !r.is_ok()).collect()
    }

    /// A one-line-per-failure summary, empty string when all succeeded.
    pub fn error_summary(&self) -> String {
        let failures = self.failures();
        if failures.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "{} of {} artifacts failed:\n",
            failures.len(),
            self.records.len()
        );
        for r in failures {
            if let Err(err) = &r.outcome {
                let attempts = if r.attempts > 1 {
                    format!(" (after {} attempts)", r.attempts)
                } else {
                    String::new()
                };
                out.push_str(&format!("  {}: {err}{attempts}\n", r.name));
            }
        }
        out
    }

    /// The machine-readable run report (see DESIGN.md §"Run-report JSON
    /// schema"): per-artifact status, duration, worker, attempt count,
    /// deadline flag, and output digest, plus run-level worker count and
    /// wall-clock.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"nanopower-run-report/v1\",\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"total_ms\": {:.3},\n",
            self.total_wall.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("  \"interrupted\": {},\n", self.interrupted));
        out.push_str(&format!("  \"replayed\": {},\n", self.replayed));
        out.push_str(&format!("  \"failures\": {},\n", self.failures().len()));
        if let Some(telemetry) = &self.telemetry {
            out.push_str(&format!("  \"telemetry\": {},\n", telemetry.to_json(2)));
        }
        out.push_str("  \"artifacts\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"artifact\": {}, ", json_string(&r.name)));
            out.push_str(&format!("\"status\": \"{}\", ", r.status()));
            out.push_str(&format!(
                "\"duration_ms\": {:.3}, ",
                r.duration.as_secs_f64() * 1e3
            ));
            out.push_str(&format!("\"worker\": {}, ", r.worker));
            out.push_str(&format!("\"attempts\": {}, ", r.attempts));
            out.push_str(&format!("\"timed_out\": {}", r.timed_out));
            match &r.outcome {
                Ok(text) => {
                    out.push_str(&format!(", \"bytes\": {}", text.len()));
                    out.push_str(&format!(
                        ", \"digest\": \"fnv1a:{:016x}\"",
                        fnv1a64(text.as_bytes())
                    ));
                }
                Err(e) => out.push_str(&format!(", \"error\": {}", json_string(&e.to_string()))),
            }
            out.push('}');
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One configured engine run: the builder consolidating the former
/// `run` / `run_with_policy` / `run_with_hooks` free functions behind a
/// single entry point that `repro`, the `nanopowerd` service, and the
/// tests all share.
///
/// Defaults: all available cores, [`RunPolicy::default`] (no deadline,
/// no retries), no hooks. Every knob is optional:
///
/// ```
/// use nanopower::engine::{CancelToken, Job, RunPolicy, Session};
/// use std::time::Duration;
///
/// let jobs = vec![
///     Job::new("first", || Ok("one\n".into())),
///     Job::new("second", || Ok("two\n".into())),
/// ];
/// let token = CancelToken::new();
/// let report = Session::new(jobs)
///     .workers(2)
///     .policy(RunPolicy {
///         deadline: Some(Duration::from_secs(30)),
///         ..RunPolicy::default()
///     })
///     .cancel(token)
///     .on_record(|index, record| {
///         // Fires on the worker thread as each record becomes final.
///         assert!(index < 2 && record.is_ok());
///     })
///     .run();
/// assert!(report.all_ok());
/// assert_eq!(report.records.len(), 2);
/// ```
///
/// The determinism contract of the module holds regardless of the
/// configuration: [`RunReport::records`] is byte-identical across worker
/// counts; only telemetry varies.
#[derive(Debug)]
pub struct Session {
    jobs: Vec<Job>,
    workers: usize,
    policy: RunPolicy,
    hooks: RunHooks,
}

impl Session {
    /// A session over `jobs` with default workers (all available cores),
    /// policy, and hooks.
    pub fn new(jobs: Vec<Job>) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Session {
            jobs,
            workers: cores,
            policy: RunPolicy::default(),
            hooks: RunHooks::default(),
        }
    }

    /// Sets the worker-thread count. Clamped to `1..=jobs.len()` when the
    /// run starts (an empty job list spawns nothing).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the failure-handling [`RunPolicy`] (per-attempt deadline,
    /// transient-job retries, backoff).
    #[must_use]
    pub fn policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces both hooks at once. Prefer [`Session::cancel`] and
    /// [`Session::on_record`] unless a prebuilt [`RunHooks`] is in hand.
    #[must_use]
    pub fn hooks(mut self, hooks: RunHooks) -> Self {
        self.hooks = hooks;
        self
    }

    /// Installs a cooperative [`CancelToken`]: cancelling it makes
    /// workers stop claiming jobs, drain what is in flight, and record
    /// the never-started jobs as [`Error::Cancelled`].
    #[must_use]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.hooks.cancel = Some(token);
        self
    }

    /// Installs a completion observer, called with
    /// `(submission_index, record)` the moment each job's record becomes
    /// final — including the `Cancelled` placeholder records a cancelled
    /// run synthesizes for jobs that never started, so journals and
    /// service response streams cover every submitted job.
    #[must_use]
    pub fn on_record(
        mut self,
        observer: impl Fn(usize, &JobRecord) + Send + Sync + 'static,
    ) -> Self {
        self.hooks.on_record = Some(Arc::new(observer));
        self
    }

    /// Executes the session and collects the [`RunReport`].
    ///
    /// - **Deadline.** Each attempt runs on a watchdog: if it exceeds
    ///   `policy.deadline`, the job is recorded as
    ///   [`Error::DeadlineExceeded`] with `timed_out` set, and the worker
    ///   claims the next job. The expired attempt keeps running on a
    ///   detached thread until it finishes on its own; its result is
    ///   discarded. Deadline expiry is terminal — it is never retried.
    /// - **Retry.** Jobs flagged [`Job::transient`] get up to
    ///   `policy.retries` extra attempts after an error or panic,
    ///   sleeping `policy.backoff` (doubling each retry) in between.
    /// - **Cancellation.** When the cancel token fires, workers stop
    ///   claiming jobs and drain whatever is in flight; unclaimed jobs
    ///   get [`Error::Cancelled`] records (observed like any other) and
    ///   the report is marked [`RunReport::interrupted`]. A cancelled
    ///   run also skips pending retries and their backoff sleeps.
    pub fn run(self) -> RunReport {
        let Session {
            jobs,
            workers,
            policy,
            hooks,
        } = self;
        run_session(jobs, workers, policy, hooks)
    }
}

/// Runs `jobs` across `workers` threads with the default (no-deadline,
/// no-retry) policy and collects the report.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::new(jobs).workers(n).run()` instead"
)]
pub fn run(jobs: Vec<Job>, workers: usize) -> RunReport {
    Session::new(jobs).workers(workers).run()
}

/// Runs `jobs` across `workers` threads under `policy`.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::new(jobs).workers(n).policy(p).run()` instead"
)]
pub fn run_with_policy(jobs: Vec<Job>, workers: usize, policy: RunPolicy) -> RunReport {
    Session::new(jobs).workers(workers).policy(policy).run()
}

/// Runs `jobs` across `workers` threads under `policy`, with [`RunHooks`]
/// for graceful cancellation and per-record observation.
#[deprecated(
    since = "0.1.0",
    note = "use `Session::new(jobs).workers(n).policy(p).hooks(h).run()` instead"
)]
pub fn run_with_hooks(
    jobs: Vec<Job>,
    workers: usize,
    policy: RunPolicy,
    hooks: RunHooks,
) -> RunReport {
    Session::new(jobs)
        .workers(workers)
        .policy(policy)
        .hooks(hooks)
        .run()
}

/// The engine proper — the body behind [`Session::run`].
fn run_session(jobs: Vec<Job>, workers: usize, policy: RunPolicy, hooks: RunHooks) -> RunReport {
    let total = jobs.len();
    let start = Instant::now();
    // Telemetry propagates from the calling thread onto every worker:
    // capture the collector (if one is installed) here, install a clone
    // inside each spawned worker. All instrumentation below is a no-op
    // when `collector` is `None`.
    let collector = np_telemetry::current();
    let cancelled = || hooks.cancel.as_ref().is_some_and(CancelToken::is_cancelled);
    if total == 0 {
        return RunReport {
            records: Vec::new(),
            workers: 0,
            total_wall: start.elapsed(),
            telemetry: collector.map(|c| c.summary()),
            interrupted: cancelled(),
            replayed: 0,
        };
    }
    let workers = workers.clamp(1, total);
    // Split the machine between engine workers and the grid solver's
    // shards: with W workers each running jobs that may call a parallel
    // solve, give every job cores/W solver threads so the two layers of
    // parallelism don't oversubscribe. Restored when the run ends.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let _solver_budget = np_grid::plan::scoped_thread_budget((cores / workers).max(1));
    let run_span = np_telemetry::span("engine.run");
    // Slots the workers take jobs from; `next` hands out indices in
    // submission order.
    let queue: Mutex<(usize, Vec<Option<Job>>)> =
        Mutex::new((0, jobs.into_iter().map(Some).collect()));
    let records: Mutex<Vec<Option<JobRecord>>> = Mutex::new((0..total).map(|_| None).collect());

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queue = &queue;
            let records = &records;
            let policy = &policy;
            let collector = &collector;
            let hooks = &hooks;
            scope.spawn(move || {
                let _telemetry = collector.as_ref().map(np_telemetry::install);
                let _worker_span = np_telemetry::span("engine.worker");
                loop {
                    let (index, job) = {
                        let mut q = queue.lock().unwrap_or_else(PoisonError::into_inner);
                        let index = q.0;
                        // A cancelled run stops claiming: everything still
                        // in the queue is drained to Cancelled records
                        // after the scope ends.
                        if index >= total
                            || hooks.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
                        {
                            return;
                        }
                        q.0 += 1;
                        // Indices are handed out exactly once under the lock,
                        // so the slot is always still populated.
                        match q.1[index].take() {
                            Some(job) => (index, job),
                            None => continue,
                        }
                    };
                    // How long the job sat in the queue before a worker
                    // claimed it (submission-to-claim, not attempt time).
                    np_telemetry::value("engine.queue_wait_us", start.elapsed().as_micros() as f64);
                    let record = run_one(job, worker, policy, hooks.cancel.as_ref());
                    if let Some(on_record) = &hooks.on_record {
                        on_record(index, &record);
                    }
                    records.lock().unwrap_or_else(PoisonError::into_inner)[index] = Some(record);
                }
            });
        }
    });
    drop(run_span);
    let interrupted = cancelled();

    // Jobs never claimed by a worker (cancellation) are still sitting in
    // their queue slots: drain them into Cancelled placeholder records so
    // the report covers every submitted job by name. The placeholders go
    // through `on_record` like any executed job, so journals and service
    // response streams see every submitted job without synthesizing
    // their own — the counters stay consistent even when a run is
    // cancelled before its first job starts.
    let mut leftover = queue.into_inner().unwrap_or_else(PoisonError::into_inner).1;
    let mut cancelled_jobs = 0u64;
    let records: Vec<JobRecord> = records
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| match leftover[i].take() {
                Some(job) => {
                    cancelled_jobs += 1;
                    let record = JobRecord {
                        name: job.name,
                        outcome: Err(Error::Cancelled),
                        duration: Duration::ZERO,
                        worker: 0,
                        attempts: 0,
                        timed_out: false,
                    };
                    if let Some(on_record) = &hooks.on_record {
                        on_record(i, &record);
                    }
                    record
                }
                // Every claimed index stores a record before its worker
                // exits; a hole here means a worker died outside
                // catch_unwind.
                None => JobRecord {
                    name: format!("job-{i}"),
                    outcome: Err(Error::Panic("worker died before recording".into())),
                    duration: Duration::ZERO,
                    worker: 0,
                    attempts: 0,
                    timed_out: false,
                },
            })
        })
        .collect();
    if cancelled_jobs > 0 {
        np_telemetry::counter("engine.cancelled_jobs", cancelled_jobs);
    }
    if interrupted {
        np_telemetry::counter("engine.interrupted", 1);
    }
    let telemetry = collector.map(|c| c.summary());
    RunReport {
        records,
        workers,
        total_wall: start.elapsed(),
        telemetry,
        interrupted,
        replayed: 0,
    }
}

/// Executes one job to completion under the policy: attempt, watchdog,
/// retry loop. A cancelled run finishes the in-flight attempt (drain)
/// but skips further retries and their backoff sleeps.
fn run_one(job: Job, worker: usize, policy: &RunPolicy, cancel: Option<&CancelToken>) -> JobRecord {
    let job_span = np_telemetry::span(job.name.clone());
    let job_start = Instant::now();
    let max_attempts = policy.max_attempts(job.transient);
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let mut attempts = 0u32;
    let (outcome, timed_out) = loop {
        attempts += 1;
        let attempt_span = np_telemetry::span("engine.attempt");
        let (outcome, timed_out) = attempt(&job.runner, policy.deadline, cancel);
        drop(attempt_span);
        if outcome.is_ok() || timed_out || attempts >= max_attempts || cancelled() {
            break (outcome, timed_out);
        }
        std::thread::sleep(policy.backoff_before(attempts));
    };
    drop(job_span);
    np_telemetry::counter("engine.jobs", 1);
    if attempts > 1 {
        np_telemetry::counter("engine.retries", u64::from(attempts - 1));
    }
    if timed_out {
        np_telemetry::counter("engine.deadline_exceeded", 1);
    }
    JobRecord {
        name: job.name,
        outcome,
        duration: job_start.elapsed(),
        worker,
        attempts,
        timed_out,
    }
}

/// One attempt of the runner, panic-isolated, with an optional deadline.
/// Returns the outcome and whether the deadline fired.
///
/// The watchdog wait is sliced so a cancelled run is observable while it
/// drains: cancellation never abandons the in-flight attempt (that is
/// the drain guarantee), but the first slice that sees the token
/// cancelled records an `engine.cancel_drain` counter, so interrupted
/// runs show how many attempts were drained rather than torn down.
fn attempt(
    runner: &Arc<dyn Fn() -> Result<String, Error> + Send + Sync>,
    deadline: Option<Duration>,
    cancel: Option<&CancelToken>,
) -> (Result<String, Error>, bool) {
    let Some(limit) = deadline else {
        return (guarded_call(runner), false);
    };
    let (tx, rx) = mpsc::channel();
    let sacrificial = Arc::clone(runner);
    // The sacrificial thread has no thread-local collector of its own,
    // so re-install the caller's — otherwise solver telemetry vanishes
    // whenever a deadline is in force.
    let collector = np_telemetry::current();
    let spawned = std::thread::Builder::new()
        .name("np-engine-watchdog".into())
        .spawn(move || {
            let _telemetry = collector.as_ref().map(np_telemetry::install);
            // The receiver may be long gone if the deadline fired; a
            // closed channel just drops the late result.
            let _ = tx.send(guarded_call(&sacrificial));
        });
    match spawned {
        Ok(_) => {
            let deadline_at = Instant::now() + limit;
            let mut drain_counted = false;
            loop {
                let remaining = deadline_at.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return (Err(Error::DeadlineExceeded { limit }), true);
                }
                let slice = remaining.min(Duration::from_millis(50));
                match rx.recv_timeout(slice) {
                    Ok(outcome) => return (outcome, false),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if !drain_counted && cancel.is_some_and(CancelToken::is_cancelled) {
                            np_telemetry::counter("engine.cancel_drain", 1);
                            drain_counted = true;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        // The sacrificial thread died without sending —
                        // only possible if its send itself panicked;
                        // treat as a deadline-free failure.
                        return (
                            Err(Error::Panic("watchdog channel disconnected".into())),
                            false,
                        );
                    }
                }
            }
        }
        // Thread spawn failed (resource exhaustion): degrade to an
        // un-watched inline attempt rather than fail the job outright.
        Err(_) => (guarded_call(runner), false),
    }
}

/// Invokes the runner with panics converted to [`Error::Panic`].
fn guarded_call(
    runner: &Arc<dyn Fn() -> Result<String, Error> + Send + Sync>,
) -> Result<String, Error> {
    catch_unwind(AssertUnwindSafe(|| runner()))
        .unwrap_or_else(|p| Err(Error::Panic(panic_message(p.as_ref()))))
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// FNV-1a, 64-bit: the digest backing [`JobRecord::digest`].
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fixed_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job::new(format!("job{i}"), move || Ok(format!("output {i}\n"))))
            .collect()
    }

    #[test]
    fn parallel_order_matches_serial() {
        let serial = Session::new(fixed_jobs(12)).workers(1).run();
        let parallel = Session::new(fixed_jobs(12)).workers(4).run();
        let texts = |r: &RunReport| -> Vec<String> {
            r.records
                .iter()
                .map(|j| j.outcome.clone().unwrap())
                .collect()
        };
        assert_eq!(texts(&serial), texts(&parallel));
        assert_eq!(parallel.workers, 4);
        assert!(parallel.all_ok());
    }

    #[test]
    fn failures_do_not_stop_the_run() {
        let jobs = vec![
            Job::new("good", || Ok("fine\n".into())),
            Job::new("bad", || Err(Error::InvalidParameter("broken".into()))),
            Job::new("panicky", || panic!("boom")),
            Job::new("after", || Ok("still ran\n".into())),
        ];
        let report = Session::new(jobs).workers(2).run();
        assert_eq!(report.records.len(), 4);
        assert!(!report.all_ok());
        assert_eq!(report.failures().len(), 2);
        assert!(report.records[3].is_ok(), "jobs after a failure still run");
        let summary = report.error_summary();
        assert!(summary.contains("2 of 4"), "{summary}");
        assert!(
            summary.contains("boom"),
            "panic message surfaces: {summary}"
        );
    }

    #[test]
    fn worker_attribution_and_clamping() {
        let report = Session::new(fixed_jobs(3)).workers(64).run();
        assert_eq!(report.workers, 3, "workers clamp to job count");
        assert!(report.records.iter().all(|r| r.worker < 3));
        let report = Session::new(fixed_jobs(3)).workers(0).run();
        assert_eq!(report.workers, 1, "zero workers clamp to one");
    }

    #[test]
    fn empty_run_is_empty() {
        let report = Session::new(Vec::new()).workers(8).run();
        assert!(report.records.is_empty());
        assert_eq!(report.workers, 0);
        assert!(report.all_ok());
        assert!(report.error_summary().is_empty());
    }

    #[test]
    fn digests_fingerprint_output() {
        let a = Session::new(fixed_jobs(2)).workers(1).run();
        let b = Session::new(fixed_jobs(2)).workers(2).run();
        assert_eq!(a.records[0].digest(), b.records[0].digest());
        assert_ne!(a.records[0].digest(), a.records[1].digest());
        assert!(a.records[0].digest().unwrap().starts_with("fnv1a:"));
    }

    #[test]
    fn json_report_shape() {
        let jobs = vec![
            Job::new("ok\"quote", || Ok("text".into())),
            Job::new("bad", || Err(Error::InvalidParameter("x\ny".into()))),
        ];
        let json = Session::new(jobs).workers(2).run().to_json();
        assert!(json.contains("\"schema\": \"nanopower-run-report/v1\""));
        assert!(json.contains("\"artifact\": \"ok\\\"quote\""), "{json}");
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"status\": \"error\""));
        assert!(json.contains("\\n"), "newlines escaped in error strings");
        assert!(json.contains("\"failures\": 1"));
        assert!(json.contains("\"duration_ms\""));
        assert!(json.contains("\"digest\": \"fnv1a:"));
        assert!(json.contains("\"attempts\": 1"));
        assert!(json.contains("\"timed_out\": false"));
    }

    #[test]
    fn deadline_marks_hung_job_without_stalling_queue() {
        let jobs = vec![
            Job::new("hang", || {
                std::thread::sleep(Duration::from_secs(30));
                Ok("never seen".into())
            }),
            Job::new("quick", || Ok("done\n".into())),
        ];
        let policy = RunPolicy {
            deadline: Some(Duration::from_millis(50)),
            ..RunPolicy::default()
        };
        let start = Instant::now();
        let report = Session::new(jobs).workers(1).policy(policy).run();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "queue must not wait for the hung job"
        );
        let hang = &report.records[0];
        assert!(hang.timed_out);
        assert!(matches!(hang.outcome, Err(Error::DeadlineExceeded { .. })));
        assert!(report.records[1].is_ok(), "queue kept draining");
        assert!(report.to_json().contains("\"timed_out\": true"));
    }

    #[test]
    fn transient_jobs_retry_until_success() {
        static FAILS: AtomicU32 = AtomicU32::new(0);
        FAILS.store(0, Ordering::SeqCst);
        let jobs = vec![Job::new("flaky", || {
            if FAILS.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(Error::InvalidParameter("transient glitch".into()))
            } else {
                Ok("recovered\n".into())
            }
        })
        .transient(true)];
        let policy = RunPolicy {
            retries: 3,
            backoff: Duration::from_millis(1),
            ..RunPolicy::default()
        };
        let report = Session::new(jobs).workers(1).policy(policy).run();
        let r = &report.records[0];
        assert!(r.is_ok(), "{:?}", r.outcome);
        assert_eq!(r.attempts, 3, "two failures then success");
        assert!(report.to_json().contains("\"attempts\": 3"));
    }

    #[test]
    fn non_transient_jobs_never_retry() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let jobs = vec![Job::new("fails", || {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Err(Error::InvalidParameter("always".into()))
        })];
        let policy = RunPolicy {
            retries: 5,
            backoff: Duration::from_millis(1),
            ..RunPolicy::default()
        };
        let report = Session::new(jobs).workers(1).policy(policy).run();
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
        assert_eq!(report.records[0].attempts, 1);
    }

    #[test]
    fn retries_exhaust_and_report_last_error() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let jobs = vec![Job::new("doomed", || {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Err(Error::InvalidParameter("permanent".into()))
        })
        .transient(true)];
        let policy = RunPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            ..RunPolicy::default()
        };
        let report = Session::new(jobs).workers(1).policy(policy).run();
        assert_eq!(CALLS.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        let r = &report.records[0];
        assert_eq!(r.attempts, 3);
        assert!(!r.is_ok());
        assert!(report.error_summary().contains("after 3 attempts"));
    }

    #[test]
    fn deadline_expiry_is_terminal_even_for_transient_jobs() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let jobs = vec![Job::new("slow", || {
            CALLS.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_secs(30));
            Ok("never".into())
        })
        .transient(true)];
        let policy = RunPolicy {
            deadline: Some(Duration::from_millis(40)),
            retries: 5,
            backoff: Duration::from_millis(1),
        };
        let report = Session::new(jobs).workers(1).policy(policy).run();
        let r = &report.records[0];
        assert_eq!(r.attempts, 1, "no retry after a deadline expiry");
        assert!(r.timed_out);
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_transient_job_retries() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let jobs = vec![Job::new("panics-once", || {
            if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt explodes");
            }
            Ok("second attempt fine\n".into())
        })
        .transient(true)];
        let policy = RunPolicy {
            retries: 1,
            backoff: Duration::from_millis(1),
            ..RunPolicy::default()
        };
        let report = Session::new(jobs).workers(1).policy(policy).run();
        let r = &report.records[0];
        assert!(r.is_ok(), "{:?}", r.outcome);
        assert_eq!(r.attempts, 2);
    }

    #[test]
    fn backoff_doubles() {
        let p = RunPolicy {
            backoff: Duration::from_millis(10),
            ..RunPolicy::default()
        };
        assert_eq!(p.backoff_before(1), Duration::from_millis(10));
        assert_eq!(p.backoff_before(2), Duration::from_millis(20));
        assert_eq!(p.backoff_before(3), Duration::from_millis(40));
    }

    #[test]
    fn determinism_holds_under_policy() {
        let mk = || {
            (0..8)
                .map(|i| {
                    Job::new(format!("j{i}"), move || Ok(format!("payload {i}\n"))).transient(true)
                })
                .collect::<Vec<_>>()
        };
        let policy = RunPolicy {
            deadline: Some(Duration::from_secs(5)),
            retries: 2,
            backoff: Duration::from_millis(1),
        };
        let a = Session::new(mk()).workers(1).policy(policy).run();
        let b = Session::new(mk()).workers(4).policy(policy).run();
        let texts = |r: &RunReport| -> Vec<_> {
            r.records
                .iter()
                .map(|j| (j.name.clone(), j.outcome.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(texts(&a), texts(&b));
    }

    #[test]
    fn solver_thread_budget_is_capped_inside_jobs() {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let jobs = (0..4)
            .map(|i| {
                let seen = Arc::clone(&seen);
                Job::new(format!("probe{i}"), move || {
                    seen.lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(np_grid::plan::thread_budget());
                    Ok("ok\n".into())
                })
            })
            .collect();
        let report = Session::new(jobs).workers(2).run();
        assert!(report.all_ok());
        // The budget is process-global, so concurrent engine runs from
        // other tests may briefly adjust it; assert the invariant (a
        // worker never sees more solver threads than the machine has)
        // rather than the exact cores/workers split.
        let seen = seen.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(seen.len(), 4);
        for &budget in seen.iter() {
            assert!(
                (1..=cores).contains(&budget),
                "budget {budget} vs {cores} cores"
            );
        }
    }

    #[test]
    fn telemetry_absent_without_collector() {
        let report = Session::new(fixed_jobs(2)).workers(2).run();
        assert!(report.telemetry.is_none());
        assert!(!report.to_json().contains("\"telemetry\""));
    }

    #[test]
    fn telemetry_captures_spans_and_counters_across_workers() {
        let c = np_telemetry::Collector::new();
        let report = {
            let _g = np_telemetry::install(&c);
            Session::new(fixed_jobs(6)).workers(3).run()
        };
        let summary = report.telemetry.as_ref().expect("collector was installed");
        let counter = |name: &str| {
            summary
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("engine.jobs"), Some(6));
        let span_names: Vec<&str> = summary.spans.iter().map(|(n, _)| n.as_str()).collect();
        assert!(span_names.contains(&"engine.run"), "{span_names:?}");
        assert!(span_names.contains(&"engine.worker"));
        assert!(span_names.contains(&"engine.attempt"));
        assert!(span_names.contains(&"job0"), "per-job span by name");
        let attempts = summary
            .spans
            .iter()
            .find(|(n, _)| n == "engine.attempt")
            .unwrap();
        assert_eq!(attempts.1.count, 6, "one attempt per job");
        assert!(summary
            .values
            .iter()
            .any(|(n, _)| n == "engine.queue_wait_us"));
        let json = report.to_json();
        assert!(json.contains("\"telemetry\""), "{json}");
        assert!(json.contains("\"engine.jobs\": 6"), "{json}");
    }

    #[test]
    fn telemetry_counts_retries_and_deadline_expiries() {
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let jobs = vec![
            Job::new("flaky", || {
                if CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                    Err(Error::InvalidParameter("glitch".into()))
                } else {
                    Ok("ok\n".into())
                }
            })
            .transient(true),
            Job::new("hang", || {
                std::thread::sleep(Duration::from_secs(30));
                Ok("never".into())
            }),
        ];
        let policy = RunPolicy {
            deadline: Some(Duration::from_millis(50)),
            retries: 2,
            backoff: Duration::from_millis(1),
        };
        let c = np_telemetry::Collector::new();
        let report = {
            let _g = np_telemetry::install(&c);
            Session::new(jobs).workers(2).policy(policy).run()
        };
        let summary = report.telemetry.expect("collector was installed");
        let counter = |name: &str| {
            summary
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("engine.retries"), Some(1));
        assert_eq!(counter("engine.deadline_exceeded"), Some(1));
    }

    #[test]
    fn cancellation_drains_in_flight_and_marks_the_rest() {
        let token = CancelToken::new();
        let trigger = token.clone();
        let mut jobs = vec![Job::new("first", move || {
            // Cancel mid-run: this job is in flight, so it drains to
            // completion; everything behind it must not start.
            trigger.cancel();
            Ok("finished despite cancel\n".into())
        })];
        for i in 1..4 {
            jobs.push(Job::new(format!("skipped{i}"), move || {
                Ok(format!("should never run {i}\n"))
            }));
        }
        let hooks = RunHooks {
            cancel: Some(token),
            ..RunHooks::default()
        };
        let report = Session::new(jobs)
            .workers(1)
            .policy(RunPolicy::default())
            .hooks(hooks)
            .run();
        assert!(report.interrupted);
        assert!(report.records[0].is_ok(), "in-flight job drained");
        for r in &report.records[1..] {
            assert_eq!(r.outcome, Err(Error::Cancelled), "{}", r.name);
            assert_eq!(r.attempts, 0);
            assert_eq!(r.status(), "cancelled");
        }
        let json = report.to_json();
        assert!(json.contains("\"interrupted\": true"), "{json}");
        assert!(json.contains("\"status\": \"cancelled\""), "{json}");
    }

    #[test]
    fn uncancelled_runs_report_uninterrupted() {
        let hooks = RunHooks {
            cancel: Some(CancelToken::new()),
            ..RunHooks::default()
        };
        let report = Session::new(fixed_jobs(3))
            .workers(2)
            .policy(RunPolicy::default())
            .hooks(hooks)
            .run();
        assert!(!report.interrupted);
        assert!(report.all_ok());
        assert!(report.to_json().contains("\"interrupted\": false"));
    }

    #[test]
    fn cancellation_skips_pending_retries() {
        let token = CancelToken::new();
        let trigger = token.clone();
        static CALLS: AtomicU32 = AtomicU32::new(0);
        CALLS.store(0, Ordering::SeqCst);
        let jobs = vec![Job::new("flaky-cancelled", move || {
            CALLS.fetch_add(1, Ordering::SeqCst);
            trigger.cancel();
            Err(Error::InvalidParameter("always fails".into()))
        })
        .transient(true)];
        let policy = RunPolicy {
            retries: 5,
            backoff: Duration::from_secs(30), // would stall the test if slept
            ..RunPolicy::default()
        };
        let hooks = RunHooks {
            cancel: Some(token),
            ..RunHooks::default()
        };
        let start = Instant::now();
        let report = Session::new(jobs)
            .workers(1)
            .policy(policy)
            .hooks(hooks)
            .run();
        assert!(start.elapsed() < Duration::from_secs(5), "no backoff sleep");
        assert_eq!(CALLS.load(Ordering::SeqCst), 1, "no retry after cancel");
        assert_eq!(report.records[0].attempts, 1);
        assert!(report.interrupted);
    }

    #[test]
    fn on_record_hook_fires_once_per_job_as_it_completes() {
        let seen: Arc<Mutex<Vec<(usize, String, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let hooks = RunHooks {
            on_record: Some(Arc::new(move |index, record: &JobRecord| {
                sink.lock().unwrap_or_else(PoisonError::into_inner).push((
                    index,
                    record.name.clone(),
                    record.is_ok(),
                ));
            })),
            ..RunHooks::default()
        };
        let mut jobs = fixed_jobs(5);
        jobs.push(Job::new("bad", || {
            Err(Error::InvalidParameter("broken".into()))
        }));
        let report = Session::new(jobs)
            .workers(3)
            .policy(RunPolicy::default())
            .hooks(hooks)
            .run();
        assert_eq!(report.records.len(), 6);
        let mut seen = seen.lock().unwrap_or_else(PoisonError::into_inner).clone();
        seen.sort();
        let indices: Vec<usize> = seen.iter().map(|(i, _, _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5], "every job observed once");
        assert!(
            seen.iter().any(|(_, name, ok)| name == "bad" && !ok),
            "failures are observed too"
        );
    }

    #[test]
    fn cancelled_placeholders_fire_the_observer() {
        // A run cancelled before any job starts must still observe every
        // submitted job — the journal/service counters depend on it.
        let token = CancelToken::new();
        token.cancel();
        let seen: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let report = Session::new(fixed_jobs(4))
            .workers(2)
            .cancel(token)
            .on_record(move |index, record: &JobRecord| {
                assert_eq!(record.status(), "cancelled");
                sink.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push((index, record.name.clone()));
            })
            .run();
        assert!(report.interrupted);
        assert_eq!(report.records.len(), 4);
        let mut seen = seen.lock().unwrap_or_else(PoisonError::into_inner).clone();
        seen.sort();
        assert_eq!(
            seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "every never-started job observed exactly once"
        );
        for (i, name) in &seen {
            assert_eq!(name, &format!("job{i}"));
        }
    }

    #[test]
    fn session_defaults_cover_cores_policy_and_hooks() {
        let session = Session::new(fixed_jobs(2));
        assert!(session.workers >= 1);
        assert_eq!(session.policy, RunPolicy::default());
        assert!(session.hooks.cancel.is_none());
        assert!(session.hooks.on_record.is_none());
        assert!(session.run().all_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_run() {
        // The one-release compatibility shims must behave exactly like
        // the builder they forward to.
        let direct = Session::new(fixed_jobs(3)).workers(2).run();
        let wrapped = run(fixed_jobs(3), 2);
        let essence = |r: &RunReport| -> Vec<(String, Result<String, Error>)> {
            r.records
                .iter()
                .map(|j| (j.name.clone(), j.outcome.clone()))
                .collect()
        };
        assert_eq!(essence(&direct), essence(&wrapped));

        let policy = RunPolicy {
            retries: 1,
            backoff: Duration::from_millis(1),
            ..RunPolicy::default()
        };
        let report = run_with_policy(fixed_jobs(2), 1, policy);
        assert!(report.all_ok());

        let hooks = RunHooks {
            cancel: Some(CancelToken::new()),
            ..RunHooks::default()
        };
        let report = run_with_hooks(fixed_jobs(2), 1, RunPolicy::default(), hooks);
        assert!(report.all_ok());
        assert!(!report.interrupted);
    }

    #[test]
    fn telemetry_reaches_through_the_deadline_watchdog() {
        // Solver spans opened inside a job must survive even when the
        // job runs on the watchdog's sacrificial thread.
        let jobs = vec![Job::new("instrumented", || {
            let _s = np_telemetry::span("inner.work");
            np_telemetry::counter("inner.iterations", 11);
            Ok("done\n".into())
        })];
        let policy = RunPolicy {
            deadline: Some(Duration::from_secs(5)),
            ..RunPolicy::default()
        };
        let c = np_telemetry::Collector::new();
        let report = {
            let _g = np_telemetry::install(&c);
            Session::new(jobs).workers(1).policy(policy).run()
        };
        let summary = report.telemetry.expect("collector was installed");
        assert!(summary.spans.iter().any(|(n, _)| n == "inner.work"));
        assert!(summary
            .counters
            .iter()
            .any(|(n, v)| n == "inner.iterations" && *v == 11));
    }
}
