//! The `Chip` scenario builder: one MPU design at one ITRS node, analyzed
//! end-to-end with every model in the workspace.

use crate::error::Error;
use np_device::Mosfet;
use np_grid::plan::GridPlan;
use np_grid::GridError;
use np_interconnect::chip::{global_signaling_report, GlobalSignalingReport};
use np_interconnect::InterconnectError;
use np_roadmap::{PackagingRoadmap, TechNode};
use np_thermal::cost::cooling_cost_dollars;
use np_thermal::dtm::{simulate, DtmPolicy, DtmResult};
use np_thermal::package::Package;
use np_thermal::rc::{ThermalRc, DEFAULT_HEAT_CAPACITY_J_PER_C};
use np_thermal::workload::WorkloadTrace;
use np_thermal::ThermalError;
use np_units::{Celsius, Microns, Seconds, ThermalResistance, Watts};
use std::fmt;

/// Estimated transistor count (logic plus on-die cache) of a
/// high-performance MPU at a node, from the ITRS-1999 density trend
/// (~13 M transistors/cm² in 1999, roughly doubling per node and reaching
/// a billion per cm² at the end of the roadmap) times the node's die
/// area.
pub fn logic_transistors(node: TechNode) -> f64 {
    let density_per_cm2 = match node {
        TechNode::N180 => 13e6,
        TechNode::N130 => 30e6,
        TechNode::N100 => 70e6,
        TechNode::N70 => 160e6,
        TechNode::N50 => 400e6,
        TechNode::N35 => 1.0e9,
    };
    density_per_cm2 * node.params().die_area.as_cm2()
}

/// Total leaking transistor width on the die: transistor count × an
/// average width of ~3 drawn features, halved for state-averaged stacks.
pub fn total_leak_width(node: TechNode) -> Microns {
    let avg_width = 3.0 * node.drawn().to_microns().0;
    Microns(logic_transistors(node) * avg_width * 0.5)
}

/// One MPU design scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chip {
    /// Technology node.
    pub node: TechNode,
    /// Average switching activity of the logic.
    pub activity: f64,
    /// Effective-to-theoretical worst-case power ratio (the paper's 75 %).
    pub effective_fraction: f64,
    /// Junction temperature for leakage analyses (the ITRS limit).
    pub junction_temp: Celsius,
}

impl Chip {
    /// The default scenario at a node: activity 0.1, effective worst case
    /// 75 %, junction at the ITRS limit for that node's year.
    ///
    /// Uses the same defaults as [`Chip::builder`]; they are constants
    /// inside the builder's accepted ranges, so no validation (and no
    /// failure path) is needed.
    pub fn at_node(node: TechNode) -> Self {
        Chip {
            node,
            activity: 0.1,
            effective_fraction: 0.75,
            junction_temp: PackagingRoadmap::for_node(node).t_junction_max,
        }
    }

    /// Starts a validating builder for a scenario at `node`:
    ///
    /// ```
    /// # use nanopower::chip::Chip;
    /// # use nanopower::roadmap::TechNode;
    /// let chip = Chip::builder(TechNode::N70)
    ///     .activity(0.15)
    ///     .effective_fraction(0.8)
    ///     .build()?;
    /// assert_eq!(chip.activity, 0.15);
    /// # Ok::<(), nanopower::Error>(())
    /// ```
    pub fn builder(node: TechNode) -> ChipBuilder {
        ChipBuilder {
            node,
            activity: 0.1,
            effective_fraction: 0.75,
            junction_temp: None,
        }
    }

    /// The node's calibrated device at this chip's junction temperature.
    ///
    /// # Errors
    ///
    /// Propagates device-calibration errors.
    pub fn device(&self) -> Result<Mosfet, np_device::DeviceError> {
        Ok(Mosfet::for_node(self.node)?.with_temperature(self.junction_temp))
    }

    /// The Section 3.1 static-power budget check.
    ///
    /// # Errors
    ///
    /// Propagates device-calibration errors.
    pub fn power_budget(&self) -> Result<PowerBudget, np_device::DeviceError> {
        let p = self.node.params();
        let dev = self.device()?;
        let width = total_leak_width(self.node);
        let projected = dev.ioff_at_drain(p.vdd).total(width) * p.vdd;
        let limit = p.max_power * 0.1;
        Ok(PowerBudget {
            node: self.node,
            total: p.max_power,
            static_limit: limit,
            projected_leakage: projected,
            reduction_needed: if projected > limit {
                1.0 - limit / projected
            } else {
                0.0
            },
        })
    }

    /// The Section 2.1 packaging/DTM study: package requirements and
    /// cooling cost with and without thermal management, plus a transient
    /// DTM simulation on a synthetic application trace.
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors.
    pub fn thermal_closure(&self) -> Result<ThermalClosure, ThermalError> {
        let pkg = PackagingRoadmap::for_node(self.node);
        let p_max = self.node.params().max_power;
        let p_eff = p_max * self.effective_fraction;
        let theta_theoretical =
            Package::required_theta_ja(p_max, pkg.t_junction_max, pkg.t_ambient);
        let theta_dtm = Package::required_theta_ja(p_eff, pkg.t_junction_max, pkg.t_ambient);
        // Simulate the DTM-protected, effective-worst-case-sized package
        // against a realistic application trace.
        let package = Package::new(theta_dtm, pkg.t_ambient);
        let node_rc = ThermalRc::new(package, DEFAULT_HEAT_CAPACITY_J_PER_C);
        let trace = WorkloadTrace::application(
            p_max,
            self.effective_fraction,
            40_000,
            Seconds(1e-4),
            self.node.index() as u64 + 1,
        );
        let policy = DtmPolicy::at_trigger(pkg.t_junction_max);
        let dtm = simulate(node_rc, &trace, &policy)?;
        Ok(ThermalClosure {
            node: self.node,
            theta_theoretical,
            theta_dtm,
            headroom: theta_dtm.0 / theta_theoretical.0 - 1.0,
            cost_theoretical: cooling_cost_dollars(p_max),
            cost_dtm: cooling_cost_dollars(p_eff),
            dtm,
        })
    }

    /// The Section 2.2 global-signaling comparison for this node.
    ///
    /// # Errors
    ///
    /// Propagates interconnect-model errors.
    pub fn signaling_plan(&self) -> Result<GlobalSignalingReport, InterconnectError> {
        global_signaling_report(self.node)
    }

    /// The Section 4 grid study: plans under minimum pitch and ITRS pads.
    ///
    /// # Errors
    ///
    /// Propagates grid-model errors.
    pub fn grid_plan(&self) -> Result<(GridPlan, GridPlan), GridError> {
        Ok((
            GridPlan::min_pitch(self.node)?,
            GridPlan::itrs_pads(self.node)?,
        ))
    }

    /// Runs the Section 3.3 combined flow (CVS → sizing → dual-Vth) on a
    /// reference synthetic netlist at this node, with the clock relaxed by
    /// `clock_factor` over the netlist's critical delay.
    ///
    /// # Errors
    ///
    /// Propagates optimizer and substrate errors; rejects a clock factor
    /// at or below 1 (no slack to spend).
    pub fn optimize(
        &self,
        clock_factor: f64,
    ) -> Result<np_opt::combined::CombinedResult, np_opt::OptError> {
        if !(clock_factor > 1.0) {
            return Err(np_opt::OptError::BadParameter("clock factor must exceed 1"));
        }
        let mut netlist = np_circuit::generate::generate_netlist(
            &np_circuit::generate::NetlistSpec::small(self.node.index() as u64 + 40),
        );
        let ctx = np_circuit::sta::TimingContext::for_node(self.node)?;
        let critical = ctx.analyze(&netlist)?.critical_delay();
        let ctx = ctx.with_clock(critical * clock_factor);
        let options = np_opt::combined::CombinedOptions {
            activity: self.activity,
            ..Default::default()
        };
        np_opt::combined::optimize(&mut netlist, &ctx, &options)
    }
}

/// Validating fluent builder for [`Chip`], started by [`Chip::builder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipBuilder {
    node: TechNode,
    activity: f64,
    effective_fraction: f64,
    junction_temp: Option<Celsius>,
}

impl ChipBuilder {
    /// Sets the average switching activity (validated in `build`: must be
    /// a finite value in `(0, 1]`).
    ///
    /// ```
    /// # use nanopower::{chip::Chip, roadmap::TechNode};
    /// let chip = Chip::builder(TechNode::N100).activity(0.2).build()?;
    /// assert_eq!(chip.activity, 0.2);
    /// # Ok::<(), nanopower::Error>(())
    /// ```
    pub fn activity(mut self, activity: f64) -> Self {
        self.activity = activity;
        self
    }

    /// Sets the effective-to-theoretical worst-case power ratio
    /// (validated in `build`: must be a finite value in `(0, 1]`).
    ///
    /// ```
    /// # use nanopower::{chip::Chip, roadmap::TechNode};
    /// let chip = Chip::builder(TechNode::N100).effective_fraction(0.9).build()?;
    /// assert_eq!(chip.effective_fraction, 0.9);
    /// # Ok::<(), nanopower::Error>(())
    /// ```
    pub fn effective_fraction(mut self, fraction: f64) -> Self {
        self.effective_fraction = fraction;
        self
    }

    /// Overrides the junction temperature used for leakage analyses;
    /// defaults to the ITRS limit for the node's year.
    ///
    /// ```
    /// # use nanopower::{chip::Chip, roadmap::TechNode};
    /// use nanopower::units::Celsius;
    /// let chip = Chip::builder(TechNode::N70)
    ///     .junction_temp(Celsius(85.0))
    ///     .build()?;
    /// assert_eq!(chip.junction_temp, Celsius(85.0));
    /// # Ok::<(), nanopower::Error>(())
    /// ```
    pub fn junction_temp(mut self, temp: Celsius) -> Self {
        self.junction_temp = Some(temp);
        self
    }

    /// Validates and constructs the [`Chip`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when activity or effective fraction is
    /// outside `(0, 1]`, or the junction temperature is outside the
    /// physically sensible `[-55, 250] °C` range:
    ///
    /// ```
    /// # use nanopower::{chip::Chip, roadmap::TechNode};
    /// assert!(Chip::builder(TechNode::N100).activity(0.0).build().is_err());
    /// assert!(Chip::builder(TechNode::N100).activity(0.1).build().is_ok());
    /// ```
    pub fn build(self) -> Result<Chip, Error> {
        if !(self.activity > 0.0 && self.activity <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "activity must be in (0, 1], got {}",
                self.activity
            )));
        }
        if !(self.effective_fraction > 0.0 && self.effective_fraction <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "effective fraction must be in (0, 1], got {}",
                self.effective_fraction
            )));
        }
        let junction_temp = self
            .junction_temp
            .unwrap_or_else(|| PackagingRoadmap::for_node(self.node).t_junction_max);
        if !(junction_temp.0 >= -55.0 && junction_temp.0 <= 250.0) {
            return Err(Error::InvalidParameter(format!(
                "junction temperature must be in [-55, 250] °C, got {junction_temp}"
            )));
        }
        Ok(Chip {
            node: self.node,
            activity: self.activity,
            effective_fraction: self.effective_fraction,
            junction_temp,
        })
    }
}

/// Result of [`Chip::power_budget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget {
    /// The node analyzed.
    pub node: TechNode,
    /// The chip's total power budget.
    pub total: Watts,
    /// The ITRS static allowance (10 % of total).
    pub static_limit: Watts,
    /// Unconstrained leakage projection at the junction temperature.
    pub projected_leakage: Watts,
    /// The fraction of leakage that circuit/architecture techniques must
    /// remove to meet the allowance — the paper's "reaches 98 % at the end
    /// of the roadmap".
    pub reduction_needed: f64,
}

impl fmt::Display for PowerBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: budget {:.0}, static limit {:.1}, unconstrained leakage {:.0} (reduction needed {:.0}%)",
            self.node,
            self.total,
            self.static_limit,
            self.projected_leakage,
            self.reduction_needed * 100.0
        )
    }
}

/// Result of [`Chip::thermal_closure`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalClosure {
    /// The node analyzed.
    pub node: TechNode,
    /// θja required for the theoretical worst case.
    pub theta_theoretical: ThermalResistance,
    /// θja sufficient when DTM caps dissipation at the effective worst
    /// case.
    pub theta_dtm: ThermalResistance,
    /// Relative θja relief (the paper's "33 % higher").
    pub headroom: f64,
    /// Cooling cost without DTM, dollars.
    pub cost_theoretical: f64,
    /// Cooling cost with DTM, dollars.
    pub cost_dtm: f64,
    /// Transient DTM simulation on a realistic workload.
    pub dtm: DtmResult,
}

impl ThermalClosure {
    /// Cooling dollars saved by DTM.
    pub fn cooling_saving(&self) -> f64 {
        self.cost_theoretical - self.cost_dtm
    }
}

impl fmt::Display for ThermalClosure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: θja {:.3} -> {:.3} (+{:.0}%), cooling ${:.0} -> ${:.0}; sim: {}",
            self.node,
            self.theta_theoretical,
            self.theta_dtm,
            self.headroom * 100.0,
            self.cost_theoretical,
            self.cost_dtm,
            self.dtm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_reduction_needed_reaches_90s_percent_at_roadmap_end() {
        // Section 3.1: "the reduction needed by circuit/architecture
        // innovations reaches 98% at the end of the roadmap".
        let b = Chip::at_node(TechNode::N35).power_budget().unwrap();
        assert!(
            b.reduction_needed > 0.90,
            "got {:.1}%",
            b.reduction_needed * 100.0
        );
        let early = Chip::at_node(TechNode::N180).power_budget().unwrap();
        assert!(early.reduction_needed < b.reduction_needed);
    }

    #[test]
    fn unconstrained_leakage_approaches_kilowatts() {
        // Section 3.1: "Unchecked, static power would reach kilowatt
        // levels, dwarfing dynamic power."
        let b = Chip::at_node(TechNode::N35).power_budget().unwrap();
        assert!(b.projected_leakage.0 > 200.0, "got {}", b.projected_leakage);
    }

    #[test]
    fn dtm_headroom_is_a_third() {
        let t = Chip::at_node(TechNode::N70).thermal_closure().unwrap();
        assert!((t.headroom - 1.0 / 3.0).abs() < 1e-9);
        assert!(t.cooling_saving() > 0.0);
        assert!(t.dtm.performance > 0.9);
    }

    #[test]
    fn grid_plans_pair_up() {
        let (min_pitch, itrs) = Chip::at_node(TechNode::N35).grid_plan().unwrap();
        assert!(min_pitch.is_routable());
        assert!(!itrs.is_routable());
    }

    #[test]
    fn signaling_plan_prefers_low_swing() {
        let s = Chip::at_node(TechNode::N50).signaling_plan().unwrap();
        assert!(s.power_saving() > 3.0);
    }

    #[test]
    fn transistor_counts_grow() {
        let mut prev = 0.0;
        for n in TechNode::ALL {
            let t = logic_transistors(n);
            assert!(t > prev);
            prev = t;
        }
        assert!(prev > 1e9, "multi-billion transistors at 35 nm");
    }

    #[test]
    fn device_runs_hot() {
        let d = Chip::at_node(TechNode::N70).device().unwrap();
        assert_eq!(d.temp, Celsius(85.0));
    }

    #[test]
    fn builder_matches_at_node_defaults() {
        for node in TechNode::ALL {
            assert_eq!(Chip::builder(node).build().unwrap(), Chip::at_node(node));
        }
    }

    #[test]
    fn builder_accepts_custom_scenario() {
        let chip = Chip::builder(TechNode::N50)
            .activity(0.25)
            .effective_fraction(0.9)
            .junction_temp(Celsius(70.0))
            .build()
            .unwrap();
        assert_eq!(chip.activity, 0.25);
        assert_eq!(chip.effective_fraction, 0.9);
        assert_eq!(chip.junction_temp, Celsius(70.0));
    }

    #[test]
    fn builder_rejects_out_of_range() {
        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(Chip::builder(TechNode::N70).activity(bad).build().is_err());
            assert!(Chip::builder(TechNode::N70)
                .effective_fraction(bad)
                .build()
                .is_err());
        }
        assert!(Chip::builder(TechNode::N70)
            .junction_temp(Celsius(300.0))
            .build()
            .is_err());
        let err = Chip::builder(TechNode::N70)
            .activity(2.0)
            .build()
            .unwrap_err();
        assert!(format!("{err}").contains("activity"), "{err}");
    }
}

#[cfg(test)]
mod optimize_tests {
    use super::*;

    #[test]
    fn facade_optimize_saves_power_at_every_nanometer_node() {
        for node in TechNode::NANOMETER {
            let r = Chip::at_node(node).optimize(1.35).expect("flow");
            assert!(
                r.total_saving() > 0.2,
                "{node}: {:.0}%",
                r.total_saving() * 100.0
            );
        }
    }

    #[test]
    fn facade_optimize_rejects_no_slack() {
        assert!(Chip::at_node(TechNode::N70).optimize(1.0).is_err());
    }
}
