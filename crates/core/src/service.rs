//! Building blocks for the `nanopowerd` persistent analysis service:
//! the bounded, crash-tolerant artifact memo, admission control with
//! bounded queueing and queue-wait load shedding, and lifetime
//! telemetry counters.
//!
//! The daemon binary (in `crates/bench`) owns the sockets and threads;
//! everything policy-shaped lives here so it can be unit-tested without
//! a socket in sight. Three pieces:
//!
//! - [`ArtifactMemo`] — a digest-keyed cache of rendered artifact
//!   outputs. The key is the FNV-1a hash of the request descriptor
//!   (artifact name + output form), and each entry carries the same
//!   `fnv1a:<16 hex>` output digest the crash-safe journal records, so
//!   a memo-served response exposes the digest a fresh run would.
//!   Correct because artifact rendering is deterministic — the whole
//!   repo is built on byte-identical reproduction (the golden-reference
//!   drift gate enforces it). The memo is **bounded** ([`MemoConfig`]
//!   entry and byte caps with least-recently-used eviction, so a
//!   long-lived daemon cannot grow without limit) and optionally
//!   **persistent**: [`ArtifactMemo::with_spill`] backs it with an
//!   fsync'd, torn-tail-tolerant spill file (`nanopower-memo/v1`, the
//!   same JSON-lines conventions as the crash-safe journal) that
//!   rehydrates warm state across a crash or restart.
//! - [`AdmissionGate`] — bounded concurrency plus a bounded wait queue.
//!   `max_inflight` requests execute at once; up to `queue_depth` more
//!   block waiting; anything beyond that is turned away immediately so
//!   the caller can answer with a typed `busy` response instead of
//!   stalling the socket. [`AdmissionGate::admit_within`] adds
//!   queue-wait load shedding: a waiter whose admission wait exceeds
//!   its budget is shed with [`Admission::Shed`] — the typed
//!   `overloaded` response, distinct from `busy` — instead of queueing
//!   unboundedly long. The gate also tracks how long the oldest
//!   admitted request has been executing
//!   ([`AdmissionGate::oldest_inflight_age`]), which is what the
//!   daemon's stuck-worker watchdog and `health` endpoint read.
//! - [`Quarantine`] — a bounded LRU of scenario-spec digests whose
//!   evaluation panicked, so a repeat offender is rejected O(1) with a
//!   typed `quarantined` record instead of burning a worker slot on a
//!   panic the daemon already caught once.
//! - [`ServiceCounters`] — the accepted/served/memo-hit/cancelled/
//!   rejected/shed/spec-rejection counters surfaced by the
//!   `{"stats": {}}` request.

use crate::engine::fnv1a64;
use crate::error::Error;
use crate::jsonio::{self, Json};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The memo spill-file schema identifier (header line), following the
/// `nanopower-journal/v1` conventions.
pub const SPILL_SCHEMA: &str = "nanopower-memo/v1";

/// One memoized artifact output: the rendered text and its
/// journal-style digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoEntry {
    /// The rendered artifact output.
    pub output: String,
    /// `fnv1a:<16 hex digits>` digest of `output` — identical to
    /// [`crate::engine::JobRecord::digest`] for the same text.
    pub digest: String,
}

/// Size bounds for the in-memory half of an [`ArtifactMemo`].
///
/// Whichever cap is hit first evicts least-recently-used entries. The
/// spill file (when present) is compacted independently, so eviction
/// never loses persisted state before its time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoConfig {
    /// Maximum resident entries (min 1).
    pub max_entries: usize,
    /// Maximum resident output bytes across all entries (min 1 KiB).
    pub max_bytes: usize,
}

impl Default for MemoConfig {
    /// 256 entries / 64 MiB — generous for the 17-artifact registry,
    /// but a hard ceiling for a daemon serving arbitrary future specs.
    fn default() -> Self {
        MemoConfig {
            max_entries: 256,
            max_bytes: 64 << 20,
        }
    }
}

impl MemoConfig {
    fn clamped(self) -> Self {
        MemoConfig {
            max_entries: self.max_entries.max(1),
            max_bytes: self.max_bytes.max(1024),
        }
    }
}

/// What [`ArtifactMemo::with_spill`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillReport {
    /// Entries rehydrated into the memo.
    pub rehydrated: usize,
    /// Lines dropped (torn tail, digest mismatch, or unparseable).
    pub dropped: usize,
}

/// The append-mode spill writer backing a persistent memo.
#[derive(Debug)]
struct SpillFile {
    file: File,
    path: PathBuf,
    /// Entry lines written since the file was last compacted; once this
    /// outgrows the entry cap by 4x the file is rewritten from the
    /// resident entries.
    lines: u64,
}

/// Everything behind the memo's one lock: the resident entries, their
/// LRU order (front = coldest), the resident byte total, and the spill.
#[derive(Debug, Default)]
struct MemoState {
    entries: HashMap<u64, MemoEntry>,
    order: VecDeque<u64>,
    bytes: usize,
    spill: Option<SpillFile>,
}

/// A cross-request, digest-keyed, LRU-bounded memo of rendered artifact
/// outputs, optionally spilled to a crash-tolerant file.
///
/// Thread-safe; shared across every connection of a daemon process.
/// Entries never go stale — artifact outputs are deterministic, so a
/// cached entry is valid for the lifetime of the binary (and, via the
/// digest check on rehydration, across restarts of the same binary).
#[derive(Debug, Default)]
pub struct ArtifactMemo {
    state: Mutex<MemoState>,
    config: MemoConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    spill_errors: AtomicU64,
}

impl ArtifactMemo {
    /// An empty, unspilled memo with the default bounds.
    pub fn new() -> Self {
        Self::with_config(MemoConfig::default())
    }

    /// An empty, unspilled memo with explicit bounds.
    pub fn with_config(config: MemoConfig) -> Self {
        ArtifactMemo {
            config: config.clamped(),
            ..Self::default()
        }
    }

    /// A memo persisted at `path`: rehydrates whatever intact entries an
    /// existing spill holds (tolerating a torn tail and skipping any
    /// line whose digest no longer matches its output), then compacts
    /// the file to the retained set so a crash loop cannot grow it.
    ///
    /// # Errors
    ///
    /// [`Error::Journal`] when the spill cannot be read or (re)written.
    /// A corrupt or foreign-schema file is not an error: it is a cache,
    /// so it is reset to empty instead.
    pub fn with_spill(
        path: impl AsRef<Path>,
        config: MemoConfig,
    ) -> Result<(Self, SpillReport), Error> {
        let path = path.as_ref().to_path_buf();
        let memo = Self::with_config(config);
        let mut report = SpillReport::default();

        // Load whatever the previous process left. Later lines win, so
        // re-inserted entries keep their most recent position.
        let mut loaded: Vec<(u64, MemoEntry)> = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.split_inclusive('\n');
                let header_ok = lines
                    .next()
                    .filter(|header| header.ends_with('\n'))
                    .and_then(|header| jsonio::parse(header.trim_end()).ok())
                    .and_then(|h| h.get("schema").and_then(Json::as_str).map(str::to_owned))
                    .is_some_and(|schema| schema == SPILL_SCHEMA);
                if header_ok {
                    for raw in lines {
                        let complete = raw.ends_with('\n');
                        let line = raw.trim_end_matches('\n');
                        if line.is_empty() {
                            continue;
                        }
                        match parse_spill_line(line) {
                            Some((key, entry)) if complete => loaded.push((key, entry)),
                            // A parseable newline-less tail may still be
                            // a prefix of a longer intended line: drop it
                            // like the journal does.
                            _ => report.dropped += 1,
                        }
                    }
                } else {
                    // Torn header or foreign schema: the whole file is
                    // unusable, start fresh.
                    report.dropped += text.lines().count();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(Error::Journal {
                    reason: format!("cannot read memo spill {}: {e}", path.display()),
                })
            }
        }

        {
            let mut state = memo.state.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, entry) in loaded {
                insert_locked(&mut state, key, entry, memo.config, &memo.evictions);
            }
            report.rehydrated = state.entries.len();
            // Compact on open: dedups superseded lines, truncates any
            // torn tail, and applies the caps to the on-disk form.
            state.spill = Some(rewrite_spill(&path, &state.entries, &state.order)?);
        }
        Ok((memo, report))
    }

    /// The memo key for a request descriptor: FNV-1a over the artifact
    /// name and the output form.
    pub fn request_key(name: &str, csv: bool) -> u64 {
        let descriptor = format!("{name}\x1f{}", if csv { "csv" } else { "text" });
        fnv1a64(descriptor.as_bytes())
    }

    /// Looks up a memoized output, counting a hit or miss and marking
    /// the entry most-recently-used.
    pub fn get(&self, key: u64) -> Option<MemoEntry> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match state.entries.get(&key).cloned() {
            Some(entry) => {
                touch(&mut state.order, key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a rendered output under `key`, computing its digest,
    /// evicting least-recently-used entries past the configured bounds,
    /// and (for a spilled memo) appending the entry to the spill file
    /// with an fsync before returning.
    pub fn insert(&self, key: u64, output: String) {
        let digest = format!("fnv1a:{:016x}", fnv1a64(output.as_bytes()));
        let entry = MemoEntry { output, digest };
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(spill) = state.spill.as_mut() {
            let line = spill_line(key, &entry);
            if spill
                .file
                .write_all(line.as_bytes())
                .and_then(|()| spill.file.sync_data())
                .is_err()
            {
                // A failing disk must not take the service down: fall
                // back to memory-only and count the degradation.
                state.spill = None;
                self.spill_errors.fetch_add(1, Ordering::Relaxed);
            } else {
                spill.lines += 1;
            }
        }
        insert_locked(&mut state, key, entry, self.config, &self.evictions);
        // Compact once the append-only file outgrows the resident set
        // 4x over; rewrite failure degrades to memory-only like above.
        let over = state
            .spill
            .as_ref()
            .is_some_and(|s| s.lines > (4 * self.config.max_entries as u64).max(64));
        if over {
            let path = state.spill.as_ref().map(|s| s.path.clone());
            if let Some(path) = path {
                match rewrite_spill(&path, &state.entries, &state.order) {
                    Ok(spill) => state.spill = Some(spill),
                    Err(_) => {
                        state.spill = None;
                        self.spill_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes (output text only).
    pub fn approx_bytes(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .bytes
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries evicted by the entry/byte bounds over the memo's life.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Whether a spill file is still being written (false for unspilled
    /// memos and after a disk failure demoted the memo to memory-only).
    pub fn spill_active(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .spill
            .is_some()
    }

    /// Spill writes abandoned because of I/O failures.
    pub fn spill_errors(&self) -> u64 {
        self.spill_errors.load(Ordering::Relaxed)
    }
}

/// Moves `key` to the most-recently-used end of the order.
fn touch(order: &mut VecDeque<u64>, key: u64) {
    if let Some(pos) = order.iter().position(|&k| k == key) {
        order.remove(pos);
    }
    order.push_back(key);
}

/// Inserts into the resident set and evicts from the cold end until the
/// bounds hold again. An over-cap single entry still resides alone —
/// the memo must be able to serve the one thing it was just asked for.
fn insert_locked(
    state: &mut MemoState,
    key: u64,
    entry: MemoEntry,
    config: MemoConfig,
    evictions: &AtomicU64,
) {
    if let Some(old) = state.entries.insert(key, entry) {
        state.bytes -= old.output.len();
    }
    state.bytes += state.entries[&key].output.len();
    touch(&mut state.order, key);
    while state.entries.len() > config.max_entries
        || (state.bytes > config.max_bytes && state.entries.len() > 1)
    {
        let Some(cold) = state.order.pop_front() else {
            break;
        };
        if let Some(old) = state.entries.remove(&cold) {
            state.bytes -= old.output.len();
            evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One spill entry as a JSON line (trailing newline included).
fn spill_line(key: u64, entry: &MemoEntry) -> String {
    format!(
        "{{\"key\":\"{key:016x}\",\"digest\":{},\"output\":{}}}\n",
        jsonio::escape(&entry.digest),
        jsonio::escape(&entry.output),
    )
}

/// Parses and digest-verifies one spill entry line; `None` drops it.
fn parse_spill_line(line: &str) -> Option<(u64, MemoEntry)> {
    let fields = jsonio::parse(line).ok()?;
    let key = u64::from_str_radix(fields.get("key")?.as_str()?, 16).ok()?;
    let digest = fields.get("digest")?.as_str()?.to_owned();
    let output = fields.get("output")?.as_str()?.to_owned();
    // The digest recorded at write time must still match the stored
    // output — the same tamper/corruption guard the journal applies.
    if digest != format!("fnv1a:{:016x}", fnv1a64(output.as_bytes())) {
        return None;
    }
    Some((key, MemoEntry { output, digest }))
}

/// Rewrites the spill at `path` to exactly the resident entries (cold
/// to hot, so a reload preserves LRU order), atomically via a temp file
/// rename, and returns the fresh append handle.
fn rewrite_spill(
    path: &Path,
    entries: &HashMap<u64, MemoEntry>,
    order: &VecDeque<u64>,
) -> Result<SpillFile, Error> {
    let io_err = |op: &str, e: &std::io::Error| Error::Journal {
        reason: format!("cannot {op} memo spill {}: {e}", path.display()),
    };
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp).map_err(|e| io_err("create", &e))?;
    let mut text = format!("{{\"schema\":{}}}\n", jsonio::escape(SPILL_SCHEMA));
    for key in order {
        if let Some(entry) = entries.get(key) {
            text.push_str(&spill_line(*key, entry));
        }
    }
    file.write_all(text.as_bytes())
        .and_then(|()| file.sync_data())
        .map_err(|e| io_err("write", &e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err("commit", &e))?;
    let file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err("reopen", &e))?;
    Ok(SpillFile {
        file,
        path: path.to_path_buf(),
        lines: 0,
    })
}

/// The outcome of [`AdmissionGate::admit_within`].
#[derive(Debug)]
pub enum Admission<'a> {
    /// Admitted; the permit releases the slot on drop.
    Admitted(AdmissionPermit<'a>),
    /// The wait queue is already full — answer `busy` immediately.
    QueueFull,
    /// The caller queued but its admission wait exceeded the shed
    /// budget — answer with the typed `overloaded` response.
    Shed {
        /// How long the caller waited before being shed.
        waited: Duration,
    },
}

/// Bounded-concurrency admission control with a bounded wait queue and
/// queue-wait load shedding.
///
/// At most `max_inflight` permits are out at once; up to `queue_depth`
/// callers block in [`AdmissionGate::admit`] waiting for one; beyond
/// that `admit` returns `None` immediately — backpressure the caller
/// turns into a typed `busy` response. [`AdmissionGate::admit_within`]
/// additionally sheds a queued waiter whose wait exceeds a budget.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
    /// Start instant of every admitted request, keyed by permit token —
    /// what [`AdmissionGate::oldest_inflight_age`] reads.
    starts: HashMap<u64, Instant>,
    next_token: u64,
}

impl AdmissionGate {
    /// A gate allowing `max_inflight` concurrent permits (min 1) and
    /// `queue_depth` blocked waiters.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Self {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    /// Acquires a permit, blocking in the bounded queue if the gate is
    /// saturated. Returns `None` without blocking when the queue is
    /// already full.
    pub fn admit(&self) -> Option<AdmissionPermit<'_>> {
        match self.admit_within(None) {
            Admission::Admitted(permit) => Some(permit),
            _ => None,
        }
    }

    /// Acquires a permit, queueing at most `budget` (forever when
    /// `None`). Distinguishes the two overload shapes: a full queue
    /// ([`Admission::QueueFull`], immediate) versus a queue wait past
    /// the budget ([`Admission::Shed`]).
    pub fn admit_within(&self, budget: Option<Duration>) -> Admission<'_> {
        let start = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.inflight >= self.max_inflight {
            if state.queued >= self.queue_depth {
                return Admission::QueueFull;
            }
            state.queued += 1;
            while state.inflight >= self.max_inflight {
                match budget {
                    None => {
                        state = self
                            .freed
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(budget) => {
                        let waited = start.elapsed();
                        let Some(remaining) = budget.checked_sub(waited) else {
                            state.queued -= 1;
                            return Admission::Shed { waited };
                        };
                        let (next, _timeout) = self
                            .freed
                            .wait_timeout(state, remaining)
                            .unwrap_or_else(PoisonError::into_inner);
                        state = next;
                    }
                }
            }
            state.queued -= 1;
        }
        state.inflight += 1;
        let token = state.next_token;
        state.next_token += 1;
        state.starts.insert(token, Instant::now());
        Admission::Admitted(AdmissionPermit { gate: self, token })
    }

    /// Permits currently out.
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .inflight
    }

    /// The concurrent-permit capacity.
    pub fn capacity(&self) -> usize {
        self.max_inflight
    }

    /// How long the oldest currently-admitted request has been holding
    /// its permit — `None` when nothing is inflight. A daemon watchdog
    /// compares this against a stuck threshold to fail its health
    /// check when the worker pool has wedged.
    pub fn oldest_inflight_age(&self) -> Option<Duration> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .starts
            .values()
            .map(Instant::elapsed)
            .max()
    }

    fn release(&self, token: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.inflight = state.inflight.saturating_sub(1);
        state.starts.remove(&token);
        drop(state);
        self.freed.notify_one();
    }
}

/// An RAII admission permit; dropping it releases the slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
    token: u64,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release(self.token);
    }
}

/// Everything behind the quarantine's one lock: the offending digests
/// (keyed like the memo, FNV-1a over the spec's canonical form), each
/// with the panic message it earned, plus their LRU order
/// (front = coldest).
#[derive(Debug, Default)]
struct QuarantineState {
    entries: HashMap<u64, String>,
    order: VecDeque<u64>,
}

/// A bounded LRU of scenario-spec digests whose evaluation panicked.
///
/// A worker panic is caught and reported as a typed `panicked` record —
/// but re-running the same spec would panic again, burning a worker
/// slot each time an abusive (or just unlucky) client repeats it. The
/// quarantine remembers the offending spec's canonical digest so a
/// repeat is rejected O(1) with a `quarantined` record carrying the
/// original panic message, without re-executing anything.
///
/// Bounded like the memo (`--quarantine-max`, LRU eviction) so a
/// panic-spraying client cannot grow daemon memory without limit;
/// occupancy is exposed through the `health` endpoint.
#[derive(Debug)]
pub struct Quarantine {
    state: Mutex<QuarantineState>,
    max_entries: usize,
    rejections: AtomicU64,
}

impl Quarantine {
    /// Default digest capacity (`--quarantine-max`).
    pub const DEFAULT_MAX: usize = 1024;

    /// An empty quarantine holding at most `max_entries` digests
    /// (min 1).
    pub fn new(max_entries: usize) -> Self {
        Quarantine {
            state: Mutex::new(QuarantineState::default()),
            max_entries: max_entries.max(1),
            rejections: AtomicU64::new(0),
        }
    }

    /// Whether `digest` is quarantined; a hit returns the original
    /// panic message, counts a rejection, and marks the digest
    /// most-recently-used (repeat offenders stay resident).
    pub fn check(&self, digest: u64) -> Option<String> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let message = state.entries.get(&digest).cloned()?;
        touch(&mut state.order, digest);
        self.rejections.fetch_add(1, Ordering::Relaxed);
        Some(message)
    }

    /// Quarantines `digest` with the panic message a repeat will be
    /// answered with, evicting the least-recently-used digest past the
    /// capacity.
    pub fn insert(&self, digest: u64, message: String) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.entries.insert(digest, message);
        touch(&mut state.order, digest);
        while state.entries.len() > self.max_entries {
            let Some(cold) = state.order.pop_front() else {
                break;
            };
            state.entries.remove(&cold);
        }
    }

    /// Digests currently quarantined — the `health` occupancy field.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the quarantine holds no digests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The digest capacity.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Lifetime count of repeats rejected from quarantine.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }
}

impl Default for Quarantine {
    /// An empty quarantine at [`Quarantine::DEFAULT_MAX`] capacity.
    fn default() -> Self {
        Self::new(Self::DEFAULT_MAX)
    }
}

/// Lifetime service counters, surfaced by the `{"stats": {}}` request.
///
/// All counters are monotone and relaxed — they are telemetry, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Requests admitted past the gate and executed.
    pub accepted: AtomicU64,
    /// Requests fully served (terminal report line written).
    pub served: AtomicU64,
    /// Records served from the artifact memo.
    pub memo_hits: AtomicU64,
    /// Requests whose deadline cancelled the run.
    pub cancelled: AtomicU64,
    /// Requests rejected with `busy` (queue full, immediate).
    pub rejected: AtomicU64,
    /// Requests shed with `overloaded` (queue wait past the budget).
    pub overloaded: AtomicU64,
    /// Connections turned away at the max-connections gate.
    pub conn_rejected: AtomicU64,
    /// Response writes abandoned because a slow client hit the
    /// per-connection write deadline.
    pub write_timeouts: AtomicU64,
    /// Malformed request lines answered with a protocol error.
    pub protocol_errors: AtomicU64,
    /// Scenario specs rejected at validation with `invalid_spec`.
    pub invalid_specs: AtomicU64,
    /// Requests rejected by the static spec cost gate.
    pub too_expensive: AtomicU64,
    /// Spec evaluations that panicked (caught and reported `panicked`).
    pub panicked: AtomicU64,
    /// Spec records answered straight from the panic quarantine.
    pub quarantined: AtomicU64,
}

/// A point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Requests admitted past the gate and executed.
    pub accepted: u64,
    /// Requests fully served.
    pub served: u64,
    /// Records served from the artifact memo.
    pub memo_hits: u64,
    /// Requests whose deadline cancelled the run.
    pub cancelled: u64,
    /// Requests rejected with `busy`.
    pub rejected: u64,
    /// Requests shed with `overloaded`.
    pub overloaded: u64,
    /// Connections turned away at the max-connections gate.
    pub conn_rejected: u64,
    /// Writes abandoned at the per-connection write deadline.
    pub write_timeouts: u64,
    /// Malformed request lines.
    pub protocol_errors: u64,
    /// Scenario specs rejected at validation.
    pub invalid_specs: u64,
    /// Requests rejected by the static spec cost gate.
    pub too_expensive: u64,
    /// Spec evaluations that panicked.
    pub panicked: u64,
    /// Spec records answered from the panic quarantine.
    pub quarantined: u64,
}

impl ServiceCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments one counter by 1.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; counters only ever grow).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            conn_rejected: self.conn_rejected.load(Ordering::Relaxed),
            write_timeouts: self.write_timeouts.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            invalid_specs: self.invalid_specs.load(Ordering::Relaxed),
            too_expensive: self.too_expensive.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn temp_spill(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "np-memo-{tag}-{}-{:?}.spill",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn memo_round_trips_and_counts() {
        let memo = ArtifactMemo::new();
        let key = ArtifactMemo::request_key("fig5", false);
        assert!(memo.get(key).is_none());
        memo.insert(key, "v,drop\n0,1\n".into());
        let entry = memo.get(key).expect("present after insert");
        assert_eq!(entry.output, "v,drop\n0,1\n");
        assert!(entry.digest.starts_with("fnv1a:"));
        assert_eq!(memo.stats(), (1, 1));
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.approx_bytes(), "v,drop\n0,1\n".len());
        assert!(!memo.is_empty());
        assert!(!memo.spill_active(), "plain memo has no spill");
    }

    #[test]
    fn memo_keys_separate_name_and_form() {
        let text = ArtifactMemo::request_key("fig5", false);
        let csv = ArtifactMemo::request_key("fig5", true);
        let other = ArtifactMemo::request_key("fig6", false);
        assert_ne!(text, csv);
        assert_ne!(text, other);
        assert_eq!(text, ArtifactMemo::request_key("fig5", false));
    }

    #[test]
    fn memo_digest_matches_engine_digest() {
        use crate::engine::{Job, Session};
        let memo = ArtifactMemo::new();
        let key = ArtifactMemo::request_key("j", false);
        memo.insert(key, "payload\n".into());
        let report = Session::new(vec![Job::new("j", || Ok("payload\n".into()))])
            .workers(1)
            .run();
        assert_eq!(
            Some(memo.get(key).expect("inserted").digest),
            report.records[0].digest()
        );
    }

    #[test]
    fn memo_evicts_least_recently_used_past_entry_cap() {
        let memo = ArtifactMemo::with_config(MemoConfig {
            max_entries: 2,
            max_bytes: 1 << 20,
        });
        let (a, b, c) = (1u64, 2u64, 3u64);
        memo.insert(a, "aa".into());
        memo.insert(b, "bb".into());
        // Touch `a` so `b` is now the cold entry.
        assert!(memo.get(a).is_some());
        memo.insert(c, "cc".into());
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.evictions(), 1);
        assert!(memo.get(b).is_none(), "LRU entry was evicted");
        assert!(memo.get(a).is_some());
        assert!(memo.get(c).is_some());
    }

    #[test]
    fn memo_evicts_on_byte_cap_but_keeps_the_newest_entry() {
        let memo = ArtifactMemo::with_config(MemoConfig {
            max_entries: 100,
            max_bytes: 1024, // clamp floor
        });
        memo.insert(1, "x".repeat(700));
        memo.insert(2, "y".repeat(700));
        assert_eq!(memo.len(), 1, "byte cap holds");
        assert!(memo.get(2).is_some(), "newest survives");
        // A single entry over the whole cap still resides.
        memo.insert(3, "z".repeat(5000));
        assert!(memo.get(3).is_some());
        assert_eq!(memo.len(), 1);
        assert!(memo.evictions() >= 2);
    }

    #[test]
    fn reinserting_a_key_replaces_without_double_counting_bytes() {
        let memo = ArtifactMemo::new();
        memo.insert(7, "short".into());
        memo.insert(7, "a longer replacement".into());
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.approx_bytes(), "a longer replacement".len());
    }

    #[test]
    fn spill_round_trips_across_a_restart() {
        let path = temp_spill("roundtrip");
        let _ = std::fs::remove_file(&path);
        let key = ArtifactMemo::request_key("fig5", false);
        let digest = {
            let (memo, report) =
                ArtifactMemo::with_spill(&path, MemoConfig::default()).expect("fresh spill");
            assert_eq!(report, SpillReport::default());
            assert!(memo.spill_active());
            memo.insert(key, "persisted output\n".into());
            memo.get(key).expect("resident").digest
        };
        // "Restart": a new memo over the same file sees the entry with
        // an identical digest.
        let (memo, report) =
            ArtifactMemo::with_spill(&path, MemoConfig::default()).expect("rehydrate");
        assert_eq!(report.rehydrated, 1, "{report:?}");
        assert_eq!(report.dropped, 0);
        let entry = memo.get(key).expect("rehydrated entry");
        assert_eq!(entry.output, "persisted output\n");
        assert_eq!(entry.digest, digest);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spill_survives_truncation_at_every_byte_offset() {
        let path = temp_spill("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (memo, _) = ArtifactMemo::with_spill(&path, MemoConfig::default()).expect("create");
            memo.insert(1, "first output\n".into());
            memo.insert(2, "second \"quoted\" output\n".into());
        }
        let bytes = std::fs::read(&path).unwrap();
        let torn = temp_spill("torn-cut");
        for cut in 0..=bytes.len() {
            std::fs::write(&torn, &bytes[..cut]).unwrap();
            let (memo, report) = ArtifactMemo::with_spill(&torn, MemoConfig::default())
                .unwrap_or_else(|e| panic!("cut at byte {cut} must load: {e}"));
            // Whatever rehydrates must be intact: digests verified on
            // load, so a torn line is dropped, never corrupted.
            for key in [1u64, 2u64] {
                if let Some(entry) = memo.get(key) {
                    assert_eq!(
                        entry.digest,
                        format!("fnv1a:{:016x}", fnv1a64(entry.output.as_bytes())),
                        "cut {cut}: corrupt entry kept"
                    );
                }
            }
            assert!(report.rehydrated <= 2);
        }
        // A full-length copy rehydrates everything.
        std::fs::write(&torn, &bytes).unwrap();
        let (_, report) = ArtifactMemo::with_spill(&torn, MemoConfig::default()).unwrap();
        assert_eq!(report.rehydrated, 2);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&torn).ok();
    }

    #[test]
    fn tampered_spill_output_is_dropped_on_load() {
        let path = temp_spill("tamper");
        let _ = std::fs::remove_file(&path);
        {
            let (memo, _) = ArtifactMemo::with_spill(&path, MemoConfig::default()).expect("create");
            memo.insert(9, "authentic\n".into());
        }
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("authentic", "tampered!");
        std::fs::write(&path, text).unwrap();
        let (memo, report) = ArtifactMemo::with_spill(&path, MemoConfig::default()).unwrap();
        assert_eq!(report.rehydrated, 0);
        assert_eq!(report.dropped, 1);
        assert!(memo.get(9).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_schema_spill_resets_to_empty() {
        let path = temp_spill("foreign");
        std::fs::write(&path, "{\"schema\":\"otherformat/v9\"}\ngarbage\n").unwrap();
        let (memo, report) = ArtifactMemo::with_spill(&path, MemoConfig::default()).unwrap();
        assert!(memo.is_empty());
        assert_eq!(report.dropped, 2);
        memo.insert(1, "fresh\n".into());
        let (memo, report) = ArtifactMemo::with_spill(&path, MemoConfig::default()).unwrap();
        assert_eq!(report.rehydrated, 1);
        assert!(memo.get(1).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spill_compaction_bounds_the_file() {
        let path = temp_spill("compact");
        let _ = std::fs::remove_file(&path);
        let config = MemoConfig {
            max_entries: 4,
            max_bytes: 1 << 20,
        };
        {
            let (memo, _) = ArtifactMemo::with_spill(&path, config).expect("create");
            // Far more inserts than the compaction threshold (64 lines
            // floor): the file must end up bounded, not ~200 lines.
            for i in 0..200u64 {
                memo.insert(i, format!("output {i}\n"));
            }
            assert!(memo.evictions() > 0);
        }
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(lines <= 1 + 64 + 4, "spill stayed bounded, {lines} lines");
        // Rehydration sees at most the resident cap.
        let (memo, report) = ArtifactMemo::with_spill(&path, config).unwrap();
        assert!(report.rehydrated <= 4, "{report:?}");
        assert!(memo.len() <= 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gate_limits_inflight_and_queues() {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let first = gate.admit().expect("first admits immediately");
        assert_eq!(gate.inflight(), 1);
        assert!(gate.oldest_inflight_age().is_some());

        // One waiter fits in the queue; it blocks until the permit drops.
        let entered = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let permit = gate.admit();
                entered.store(1, Ordering::SeqCst);
                drop(permit);
            })
        };
        // Give the waiter time to enqueue, then confirm it is parked.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "waiter parked");
        drop(first);
        waiter.join().expect("waiter finishes after release");
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        assert_eq!(gate.inflight(), 0);
        assert!(gate.oldest_inflight_age().is_none());
    }

    #[test]
    fn gate_rejects_beyond_queue_depth() {
        let gate = Arc::new(AdmissionGate::new(1, 0));
        let held = gate.admit().expect("capacity 1");
        assert!(gate.admit().is_none(), "zero queue depth rejects at once");
        assert!(
            matches!(
                gate.admit_within(Some(Duration::ZERO)),
                Admission::QueueFull
            ),
            "budgeted admit distinguishes a full queue"
        );
        drop(held);
        assert!(gate.admit().is_some(), "slot reusable after release");
    }

    #[test]
    fn queue_wait_past_budget_sheds_with_typed_outcome() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let held = gate.admit().expect("capacity 1");
        let start = Instant::now();
        match gate.admit_within(Some(Duration::from_millis(50))) {
            Admission::Shed { waited } => {
                assert!(waited >= Duration::from_millis(50), "{waited:?}");
                assert!(start.elapsed() < Duration::from_secs(5));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // The shed waiter left the queue: a fresh waiter still fits and
        // admits once the slot frees.
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                matches!(
                    gate.admit_within(Some(Duration::from_secs(10))),
                    Admission::Admitted(_)
                )
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert!(waiter.join().expect("waiter"), "freed slot admits");
    }

    #[test]
    fn gate_clamps_zero_capacity_to_one() {
        let gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.capacity(), 1);
        assert!(gate.admit().is_some());
    }

    #[test]
    fn oldest_inflight_age_tracks_the_stuck_permit() {
        let gate = AdmissionGate::new(2, 0);
        let _stuck = gate.admit().expect("first");
        std::thread::sleep(Duration::from_millis(30));
        let fresh = gate.admit().expect("second");
        let oldest = gate.oldest_inflight_age().expect("two inflight");
        assert!(oldest >= Duration::from_millis(30), "{oldest:?}");
        drop(fresh);
        let oldest = gate.oldest_inflight_age().expect("stuck one remains");
        assert!(oldest >= Duration::from_millis(30), "{oldest:?}");
    }

    #[test]
    fn quarantine_rejects_repeats_with_the_original_message() {
        let q = Quarantine::new(8);
        assert!(q.is_empty());
        assert_eq!(q.check(1), None, "unknown digest passes");
        assert_eq!(q.rejections(), 0);
        q.insert(1, "panicked: boom".into());
        assert_eq!(q.len(), 1);
        assert_eq!(q.check(1).as_deref(), Some("panicked: boom"));
        assert_eq!(q.check(1).as_deref(), Some("panicked: boom"));
        assert_eq!(q.rejections(), 2);
        assert_eq!(q.check(2), None, "other digests unaffected");
    }

    #[test]
    fn quarantine_evicts_least_recently_used_past_capacity() {
        let q = Quarantine::new(2);
        q.insert(1, "one".into());
        q.insert(2, "two".into());
        // Touch 1 so 2 becomes the cold digest.
        assert!(q.check(1).is_some());
        q.insert(3, "three".into());
        assert_eq!(q.len(), 2);
        assert!(q.check(2).is_none(), "LRU digest evicted");
        assert!(q.check(1).is_some());
        assert!(q.check(3).is_some());
        // Eviction proceeds strictly cold-to-hot: 1 was touched after 3
        // was inserted, so the next insert evicts 3.
        assert!(q.check(1).is_some());
        q.insert(4, "four".into());
        assert!(q.check(3).is_none(), "second-coldest evicted next");
        assert!(q.check(1).is_some() && q.check(4).is_some());
    }

    #[test]
    fn quarantine_reinsert_updates_in_place() {
        let q = Quarantine::new(2);
        q.insert(1, "first message".into());
        q.insert(1, "second message".into());
        assert_eq!(q.len(), 1, "reinsert replaces, not duplicates");
        assert_eq!(q.check(1).as_deref(), Some("second message"));
    }

    #[test]
    fn quarantine_clamps_zero_capacity_to_one() {
        let q = Quarantine::new(0);
        assert_eq!(q.capacity(), 1);
        q.insert(1, "a".into());
        q.insert(2, "b".into());
        assert_eq!(q.len(), 1);
        assert!(q.check(2).is_some(), "newest digest survives");
    }

    #[test]
    fn counters_snapshot() {
        let counters = ServiceCounters::new();
        counters.bump(&counters.accepted);
        counters.bump(&counters.accepted);
        counters.bump(&counters.rejected);
        counters.bump(&counters.overloaded);
        counters.bump(&counters.write_timeouts);
        counters.bump(&counters.conn_rejected);
        let snap = counters.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.write_timeouts, 1);
        assert_eq!(snap.conn_rejected, 1);
        assert_eq!(snap.served, 0);
    }
}
