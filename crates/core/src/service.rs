//! Building blocks for the `nanopowerd` persistent analysis service:
//! the cross-request artifact memo, admission control with bounded
//! queueing, and lifetime telemetry counters.
//!
//! The daemon binary (in `crates/bench`) owns the sockets and threads;
//! everything policy-shaped lives here so it can be unit-tested without
//! a socket in sight. Three pieces:
//!
//! - [`ArtifactMemo`] — a digest-keyed cache of rendered artifact
//!   outputs. The key is the FNV-1a hash of the request descriptor
//!   (artifact name + output form), and each entry carries the same
//!   `fnv1a:<16 hex>` output digest the crash-safe journal records, so
//!   a memo-served response exposes the digest a fresh run would.
//!   Correct because artifact rendering is deterministic — the whole
//!   repo is built on byte-identical reproduction (the golden-reference
//!   drift gate enforces it).
//! - [`AdmissionGate`] — bounded concurrency plus a bounded wait queue.
//!   `max_inflight` requests execute at once; up to `queue_depth` more
//!   block waiting; anything beyond that is turned away immediately so
//!   the caller can answer with a typed `busy` response instead of
//!   stalling the socket.
//! - [`ServiceCounters`] — the accepted/served/memo-hit/cancelled/
//!   rejected counters surfaced by the `{"stats": {}}` request.

use crate::engine::fnv1a64;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// One memoized artifact output: the rendered text and its
/// journal-style digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoEntry {
    /// The rendered artifact output.
    pub output: String,
    /// `fnv1a:<16 hex digits>` digest of `output` — identical to
    /// [`crate::engine::JobRecord::digest`] for the same text.
    pub digest: String,
}

/// A cross-request, digest-keyed memo of rendered artifact outputs.
///
/// Thread-safe; shared across every connection of a daemon process.
/// Entries never expire — artifact outputs are deterministic, so a
/// stale entry is impossible within one build of the binary.
#[derive(Debug, Default)]
pub struct ArtifactMemo {
    entries: Mutex<HashMap<u64, MemoEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// The memo key for a request descriptor: FNV-1a over the artifact
    /// name and the output form.
    pub fn request_key(name: &str, csv: bool) -> u64 {
        let descriptor = format!("{name}\x1f{}", if csv { "csv" } else { "text" });
        fnv1a64(descriptor.as_bytes())
    }

    /// Looks up a memoized output, counting a hit or miss.
    pub fn get(&self, key: u64) -> Option<MemoEntry> {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        match entries.get(&key) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a rendered output under `key`, computing its digest.
    pub fn insert(&self, key: u64, output: String) {
        let digest = format!("fnv1a:{:016x}", fnv1a64(output.as_bytes()));
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, MemoEntry { output, digest });
    }

    /// Number of entries currently memoized.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Bounded-concurrency admission control with a bounded wait queue.
///
/// At most `max_inflight` permits are out at once; up to `queue_depth`
/// callers block in [`AdmissionGate::admit`] waiting for one; beyond
/// that `admit` returns `None` immediately — backpressure the caller
/// turns into a typed `busy` response.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

impl AdmissionGate {
    /// A gate allowing `max_inflight` concurrent permits (min 1) and
    /// `queue_depth` blocked waiters.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Self {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    /// Acquires a permit, blocking in the bounded queue if the gate is
    /// saturated. Returns `None` without blocking when the queue is
    /// already full.
    pub fn admit(&self) -> Option<AdmissionPermit<'_>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.inflight < self.max_inflight {
            state.inflight += 1;
            return Some(AdmissionPermit { gate: self });
        }
        if state.queued >= self.queue_depth {
            return None;
        }
        state.queued += 1;
        while state.inflight >= self.max_inflight {
            state = self
                .freed
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.queued -= 1;
        state.inflight += 1;
        Some(AdmissionPermit { gate: self })
    }

    /// Permits currently out.
    pub fn inflight(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .inflight
    }

    /// The concurrent-permit capacity.
    pub fn capacity(&self) -> usize {
        self.max_inflight
    }

    fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.inflight = state.inflight.saturating_sub(1);
        drop(state);
        self.freed.notify_one();
    }
}

/// An RAII admission permit; dropping it releases the slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// Lifetime service counters, surfaced by the `{"stats": {}}` request.
///
/// All counters are monotone and relaxed — they are telemetry, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Requests admitted past the gate and executed.
    pub accepted: AtomicU64,
    /// Requests fully served (terminal report line written).
    pub served: AtomicU64,
    /// Records served from the artifact memo.
    pub memo_hits: AtomicU64,
    /// Requests whose deadline cancelled the run.
    pub cancelled: AtomicU64,
    /// Requests rejected with `busy`.
    pub rejected: AtomicU64,
    /// Malformed request lines answered with a protocol error.
    pub protocol_errors: AtomicU64,
}

/// A point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Requests admitted past the gate and executed.
    pub accepted: u64,
    /// Requests fully served.
    pub served: u64,
    /// Records served from the artifact memo.
    pub memo_hits: u64,
    /// Requests whose deadline cancelled the run.
    pub cancelled: u64,
    /// Requests rejected with `busy`.
    pub rejected: u64,
    /// Malformed request lines.
    pub protocol_errors: u64,
}

impl ServiceCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments one counter by 1.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// relaxed; counters only ever grow).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn memo_round_trips_and_counts() {
        let memo = ArtifactMemo::new();
        let key = ArtifactMemo::request_key("fig5", false);
        assert!(memo.get(key).is_none());
        memo.insert(key, "v,drop\n0,1\n".into());
        let entry = memo.get(key).expect("present after insert");
        assert_eq!(entry.output, "v,drop\n0,1\n");
        assert!(entry.digest.starts_with("fnv1a:"));
        assert_eq!(memo.stats(), (1, 1));
        assert_eq!(memo.len(), 1);
        assert!(!memo.is_empty());
    }

    #[test]
    fn memo_keys_separate_name_and_form() {
        let text = ArtifactMemo::request_key("fig5", false);
        let csv = ArtifactMemo::request_key("fig5", true);
        let other = ArtifactMemo::request_key("fig6", false);
        assert_ne!(text, csv);
        assert_ne!(text, other);
        assert_eq!(text, ArtifactMemo::request_key("fig5", false));
    }

    #[test]
    fn memo_digest_matches_engine_digest() {
        use crate::engine::{Job, Session};
        let memo = ArtifactMemo::new();
        let key = ArtifactMemo::request_key("j", false);
        memo.insert(key, "payload\n".into());
        let report = Session::new(vec![Job::new("j", || Ok("payload\n".into()))])
            .workers(1)
            .run();
        assert_eq!(
            Some(memo.get(key).expect("inserted").digest),
            report.records[0].digest()
        );
    }

    #[test]
    fn gate_limits_inflight_and_queues() {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let first = gate.admit().expect("first admits immediately");
        assert_eq!(gate.inflight(), 1);

        // One waiter fits in the queue; it blocks until the permit drops.
        let entered = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            std::thread::spawn(move || {
                let permit = gate.admit();
                entered.store(1, Ordering::SeqCst);
                drop(permit);
            })
        };
        // Give the waiter time to enqueue, then confirm it is parked.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(entered.load(Ordering::SeqCst), 0, "waiter parked");
        drop(first);
        waiter.join().expect("waiter finishes after release");
        assert_eq!(entered.load(Ordering::SeqCst), 1);
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn gate_rejects_beyond_queue_depth() {
        let gate = Arc::new(AdmissionGate::new(1, 0));
        let held = gate.admit().expect("capacity 1");
        assert!(gate.admit().is_none(), "zero queue depth rejects at once");
        drop(held);
        assert!(gate.admit().is_some(), "slot reusable after release");
    }

    #[test]
    fn gate_clamps_zero_capacity_to_one() {
        let gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.capacity(), 1);
        assert!(gate.admit().is_some());
    }

    #[test]
    fn counters_snapshot() {
        let counters = ServiceCounters::new();
        counters.bump(&counters.accepted);
        counters.bump(&counters.accepted);
        counters.bump(&counters.rejected);
        let snap = counters.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.served, 0);
    }
}
