//! Property-based tests on the compact-model invariants the paper's
//! analysis leans on.

use np_device::solve::solve_vth_for_ion;
use np_device::stack::SubthresholdStack;
use np_device::{GateKind, Mosfet};
use np_roadmap::TechNode;
use np_units::{Celsius, MicroampsPerMicron, Nanometers, Volts};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechNode> {
    prop::sample::select(TechNode::ALL.to_vec())
}

fn device(node: TechNode) -> Mosfet {
    Mosfet::for_node(node).expect("calibration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ion_is_monotone_in_vdd(node in any_node(), dv in 0.01..0.3f64) {
        let dev = device(node);
        let vdd = node.params().vdd;
        let lo = dev.ion(vdd).unwrap();
        let hi = dev.ion(vdd + Volts(dv)).unwrap();
        prop_assert!(hi > lo);
    }

    #[test]
    fn ion_is_monotone_decreasing_in_vth(node in any_node(), dv in 0.005..0.1f64) {
        let dev = device(node);
        let vdd = node.params().vdd;
        let base = dev.ion(vdd).unwrap();
        let slower = dev.with_vth(dev.vth + Volts(dv)).ion(vdd).unwrap();
        prop_assert!(slower < base);
    }

    #[test]
    fn ioff_follows_eq4_exactly(node in any_node(), dv in -0.15..0.15f64) {
        // Ioff(vth + dv)/Ioff(vth) = 10^(-dv/S), for any node and shift.
        let dev = device(node);
        let shifted = dev.with_vth(dev.vth + Volts(dv));
        let expect = 10f64.powf(-dv / dev.subthreshold_swing().0);
        let got = shifted.ioff() / dev.ioff();
        prop_assert!((got / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ioff_increases_with_temperature(node in any_node(), dt in 1.0..80.0f64) {
        let dev = device(node);
        let hot = dev.with_temperature(Celsius(dev.temp.0 + dt));
        prop_assert!(hot.ioff() > dev.ioff());
    }

    #[test]
    fn metal_gate_never_hurts(node in any_node()) {
        // At equal Vth, removing gate depletion can only add drive.
        let poly = device(node);
        let metal = poly.with_gate(GateKind::Metal);
        let vdd = node.params().vdd;
        prop_assert!(metal.ion(vdd).unwrap() >= poly.ion(vdd).unwrap());
    }

    #[test]
    fn rs_degradation_is_monotone(node in any_node(), rs in 0.0..400.0f64) {
        let mut dev = device(node);
        let vdd = node.params().vdd;
        let ideal = {
            let mut d = dev.clone();
            d.rs_ohm_um = 0.0;
            d.ion(vdd).unwrap()
        };
        dev.rs_ohm_um = rs;
        let real = dev.ion(vdd).unwrap();
        prop_assert!(real <= ideal);
    }

    #[test]
    fn solve_then_evaluate_round_trips(
        node in any_node(),
        target in 300.0..900.0f64,
    ) {
        let proto = device(node);
        let vdd = node.params().vdd;
        if let Ok(vth) = solve_vth_for_ion(&proto, vdd, MicroampsPerMicron(target)) {
            let check = proto.with_vth(vth).ion(vdd).unwrap();
            prop_assert!((check.0 - target).abs() < 1.0, "{} vs {target}", check.0);
        }
    }

    #[test]
    fn stacks_never_leak_more_than_a_single_device(
        node in any_node(),
        depth in 2usize..4,
    ) {
        let dev = device(node);
        let vdd = node.params().vdd;
        let single = dev.ioff();
        let stacked = SubthresholdStack::uniform(&dev, depth).leakage(vdd).unwrap();
        prop_assert!(stacked < single);
    }

    #[test]
    fn thinner_oxide_means_more_drive_at_fixed_bias(
        tox in 1.0..3.0f64,
        shrink in 0.05..0.5f64,
    ) {
        let base = Mosfet {
            leff: Nanometers(100.0),
            tox_phys: Nanometers(tox),
            gate: GateKind::PolySilicon,
            vth: Volts(0.3),
            mu0: 450.0,
            rs_ohm_um: 60.0,
            temp: Celsius(26.85),
            substrate: np_device::substrate::Substrate::Bulk,
            node: None,
        };
        let thin = Mosfet { tox_phys: Nanometers(tox * (1.0 - shrink)), ..base.clone() };
        let v = Volts(1.5);
        prop_assert!(thin.ion(v).unwrap() > base.ion(v).unwrap());
    }

    #[test]
    fn dibl_reduces_leakage_below_nominal_drain(node in any_node(), frac in 0.2..0.99f64) {
        let dev = device(node);
        let vnom = dev.nominal_vdd();
        let reduced = dev.ioff_at_drain(vnom * frac);
        prop_assert!(reduced < dev.ioff());
    }
}
