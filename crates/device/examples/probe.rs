use np_device::solve::solve_vth_for_ion;
use np_device::{GateKind, Mosfet};
use np_roadmap::TechNode;
use np_units::{MicroampsPerMicron, Volts};

fn main() {
    println!("mu0 = {:.1}", np_device::presets::calibrated_mu0());
    for n in TechNode::ALL {
        let d = Mosfet::for_node(n).unwrap();
        let p = n.params();
        println!(
            "{n}: vth={:.3} ioff={:.1} nA/um  mueff={:.0} esatL={:.3}V",
            d.vth.0,
            d.ioff().as_nano_per_micron(),
            d.mu_eff(p.vdd),
            d.esat(p.vdd).0 * d.leff.to_microns().0
        );
    }
    let d = Mosfet::for_node_with(TechNode::N50, Volts(0.7), GateKind::PolySilicon).unwrap();
    println!(
        "50nm@0.7: vth={:.3} ioff={:.1}",
        d.vth.0,
        d.ioff().as_nano_per_micron()
    );
    let d = Mosfet::for_node_with(TechNode::N35, Volts(0.6), GateKind::Metal).unwrap();
    println!(
        "35nm metal: vth={:.3} ioff={:.1}",
        d.vth.0,
        d.ioff().as_nano_per_micron()
    );
    let t = Mosfet::for_node(TechNode::N180).unwrap();
    for v in [1.8, 1.5, 1.2] {
        match solve_vth_for_ion(&t, Volts(v), MicroampsPerMicron(750.0)) {
            Ok(vth) => println!("180nm tmpl @ {v}: vth={:.3}", vth.0),
            Err(e) => println!("180nm tmpl @ {v}: ERR {e}"),
        }
    }
    let d35 = Mosfet::for_node(TechNode::N35).unwrap();
    for v in [0.6, 0.5, 0.4, 0.3, 0.2] {
        let nd = np_device::delay::normalized_delay(&d35, Volts(v), d35.vth, Volts(0.6), d35.vth);
        println!(
            "35nm const-vth delay @ {v}: {:?}",
            nd.map(|x| (x * 100.0).round() / 100.0)
        );
    }
    for n in TechNode::ALL {
        let g = np_device::dualvth::ion_gain(n, Volts(0.1)).unwrap();
        let p = np_device::dualvth::ioff_penalty_for_gain(n, 0.2);
        println!(
            "{n}: ion_gain(100mV)={:.1}%  ioff_penalty(+20%)={:?}",
            g * 100.0,
            p.map(|x| (x * 10.0).round() / 10.0)
        );
    }
}
