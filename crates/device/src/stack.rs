//! Subthreshold leakage of series transistor stacks.
//!
//! Section 3.3 closes with "the use of different threshold transistors in a
//! stacked arrangement can give fairly substantial leakage savings with
//! minimal delay penalties", leveraging the *stack effect*: with two or
//! more series devices off, the internal node floats to a small positive
//! voltage, which (a) reverse-biases the top device's gate, (b) reduces its
//! drain-to-source voltage (and hence DIBL), and (c) collapses the bottom
//! device's `1 − e^(−Vds/φt)` factor.
//!
//! The model extends Eq. 4 with its standard bias dependences:
//!
//! ```text
//! I(Vgs, Vds) = I0 · 10^((Vgs − Vth + η·Vds)/S) · (1 − e^(−Vds/φt))
//! ```
//!
//! and solves the internal node voltages by current continuity (bisection,
//! applied recursively for stacks deeper than two).

use crate::error::DeviceError;
use crate::model::{Mosfet, DIBL_ETA};
use np_units::math::bisect;
use np_units::{MicroampsPerMicron, Volts};

/// A series stack of off transistors, bottom first.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_device::DeviceError> {
/// use np_device::{stack::SubthresholdStack, Mosfet};
/// use np_roadmap::TechNode;
///
/// let dev = Mosfet::for_node(TechNode::N70)?;
/// let single = SubthresholdStack::uniform(&dev, 1).leakage(dev.nominal_vdd())?;
/// let double = SubthresholdStack::uniform(&dev, 2).leakage(dev.nominal_vdd())?;
/// assert!(single.0 / double.0 > 5.0, "two-stacks leak several times less");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SubthresholdStack {
    devices: Vec<Mosfet>,
}

impl SubthresholdStack {
    /// A stack of the given devices, listed bottom (source-side) first.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<Mosfet>) -> Self {
        assert!(!devices.is_empty(), "stack needs at least one device");
        Self { devices }
    }

    /// A stack of `n` copies of one device.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(device: &Mosfet, n: usize) -> Self {
        assert!(n > 0, "stack needs at least one device");
        Self {
            devices: vec![device.clone(); n],
        }
    }

    /// Stack depth.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false (construction requires at least one device).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The devices, bottom first.
    pub fn devices(&self) -> &[Mosfet] {
        &self.devices
    }

    /// Leakage current of the stack with all gates at 0 V and the top
    /// drain at `vdd`, per micron of width.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadParameter`] for a non-positive supply;
    /// internal-node solves propagate as [`DeviceError::Solve`].
    pub fn leakage(&self, vdd: Volts) -> Result<MicroampsPerMicron, DeviceError> {
        if !(vdd.0 > 0.0) {
            return Err(DeviceError::BadParameter("supply must be positive"));
        }
        self.leakage_rec(&self.devices, vdd)
    }

    /// Leakage suppression factor relative to the bottom device alone:
    /// `Ioff(single) / Ioff(stack)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SubthresholdStack::leakage`].
    pub fn suppression_factor(&self, vdd: Volts) -> Result<f64, DeviceError> {
        let single = subthreshold_current(&self.devices[0], Volts(0.0), vdd);
        let stacked = self.leakage(vdd)?;
        Ok(single / stacked.0)
    }

    fn leakage_rec(
        &self,
        devices: &[Mosfet],
        vtotal: Volts,
    ) -> Result<MicroampsPerMicron, DeviceError> {
        match devices {
            [only] => Ok(MicroampsPerMicron(subthreshold_current(
                only,
                Volts(0.0),
                vtotal,
            ))),
            [rest @ .., top] => {
                // Current continuity: the (n-1)-substack at drain bias Vx
                // must carry the same current as the top device with
                // Vgs = -Vx, Vds = Vtotal - Vx. The substack current falls
                // with decreasing Vx while the top current rises, so the
                // difference brackets a root on (0, Vtotal).
                let balance = |vx: f64| -> f64 {
                    // A substack at (near-)zero drain bias carries no
                    // current; treating inner solve failures at the
                    // interval ends as zero keeps the bracket intact.
                    let below = self
                        .leakage_rec(rest, Volts(vx))
                        .map(|i| i.0)
                        .unwrap_or(0.0);
                    let above = subthreshold_current(top, Volts(-vx), Volts(vtotal.0 - vx));
                    below - above
                };
                let eps = 1e-9;
                let vx = bisect(balance, eps, vtotal.0 - eps, 1e-12)?;
                self.leakage_rec(rest, Volts(vx))
            }
            [] => unreachable!("constructor guarantees non-empty stacks"),
        }
    }
}

/// The bias-dependent subthreshold current (µA/µm) underlying Eq. 4.
///
/// At `Vgs = 0, Vds = Vdd` (large) this reduces to the paper's
/// `Ioff = 10 × 10^(−Vth/S)` up to the DIBL normalization, which is chosen
/// so single-device leakage matches [`Mosfet::ioff`] at full drain bias.
pub fn subthreshold_current(dev: &Mosfet, vgs: Volts, vds: Volts) -> f64 {
    if vds.0 <= 0.0 {
        return 0.0;
    }
    let s = dev.subthreshold_swing().0;
    let phi_t = 0.0259 * dev.temp_kelvin().0 / 300.0;
    // Normalize DIBL to full drain bias so that subthreshold_current at
    // (0, Vdd_nominal) equals dev.ioff().
    let vdd_ref = dev.nominal_vdd().0;
    let base = dev.ioff().0;
    base * 10f64.powf((vgs.0 + DIBL_ETA * (vds.0 - vdd_ref)) / s) * (1.0 - (-vds.0 / phi_t).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;

    fn dev() -> Mosfet {
        Mosfet::for_node(TechNode::N70).expect("calibrated device")
    }

    #[test]
    fn single_device_stack_matches_ioff() {
        let d = dev();
        let stack = SubthresholdStack::uniform(&d, 1);
        let i = stack.leakage(d.nominal_vdd()).unwrap();
        assert!((i.0 / d.ioff().0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_stack_suppresses_by_about_an_order() {
        let d = dev();
        let f = SubthresholdStack::uniform(&d, 2)
            .suppression_factor(d.nominal_vdd())
            .unwrap();
        assert!((4.0..=40.0).contains(&f), "suppression {f} out of band");
    }

    #[test]
    fn deeper_stacks_suppress_more() {
        let d = dev();
        let v = d.nominal_vdd();
        let f2 = SubthresholdStack::uniform(&d, 2)
            .suppression_factor(v)
            .unwrap();
        let f3 = SubthresholdStack::uniform(&d, 3)
            .suppression_factor(v)
            .unwrap();
        assert!(f3 > f2);
    }

    #[test]
    fn mixed_vth_stack_beats_uniform_low_vth() {
        // Section 3.3: a high-Vth device in the stack buys extra
        // suppression even when the other device stays fast.
        let low = dev();
        let high = low.with_vth(low.vth + Volts(0.1));
        let v = low.nominal_vdd();
        let uniform = SubthresholdStack::uniform(&low, 2).leakage(v).unwrap();
        let mixed = SubthresholdStack::new(vec![high.clone(), low.clone()])
            .leakage(v)
            .unwrap();
        assert!(mixed < uniform);
    }

    #[test]
    fn high_vth_position_matters_little_but_both_work() {
        let low = dev();
        let high = low.with_vth(low.vth + Volts(0.1));
        let v = low.nominal_vdd();
        let bottom = SubthresholdStack::new(vec![high.clone(), low.clone()])
            .leakage(v)
            .unwrap();
        let top = SubthresholdStack::new(vec![low.clone(), high.clone()])
            .leakage(v)
            .unwrap();
        let single_low = SubthresholdStack::uniform(&low, 2).leakage(v).unwrap();
        assert!(bottom < single_low);
        assert!(top < single_low);
    }

    #[test]
    fn zero_vds_carries_no_current() {
        assert_eq!(subthreshold_current(&dev(), Volts(0.0), Volts(0.0)), 0.0);
    }

    #[test]
    fn rejects_non_positive_supply() {
        let d = dev();
        assert!(SubthresholdStack::uniform(&d, 2)
            .leakage(Volts(0.0))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_stack_panics() {
        let _ = SubthresholdStack::new(Vec::new());
    }

    #[test]
    fn len_reports_depth() {
        let s = SubthresholdStack::uniform(&dev(), 3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.devices().len(), 3);
    }
}
