//! # np-device
//!
//! The compact nanometer MOSFET I–V model of *Future Performance Challenges
//! in Nanometer Design* (Sylvester & Kaul, DAC 2001), Section 3.1, Eqs. 2–4:
//!
//! * saturation drive current `Ion` with parasitic source-resistance and
//!   velocity-saturation corrections (Eq. 2, after Chen & Hu),
//! * the underlying `Idsat0` expression with gate-voltage-dependent
//!   effective mobility and *electrical* oxide capacitance (Eq. 3),
//! * subthreshold off current `Ioff = 10 µA/µm × 10^(−Vth/85 mV)` (Eq. 4),
//!   temperature-scaled for hot-junction analyses.
//!
//! On top of the raw model the crate provides:
//!
//! * [`solve`] — the paper's workflow of *solving for the `Vth` that meets
//!   the ITRS 750 µA/µm target*, plus the one-time mobility calibration
//!   that anchors the 180 nm node at `Vth = 0.30 V` (Table 2's first
//!   column);
//! * [`presets`] — calibrated devices for every ITRS node;
//! * [`delay`] — an `Ion`-based gate-delay model (`t ∝ C·Vdd/Ion`) used by
//!   the Vdd/Vth policy studies of Figs. 3–4;
//! * [`dualvth`] — the dual-threshold scaling analysis of Fig. 2;
//! * [`stack`] — subthreshold series-stack leakage (the Section 3.3
//!   "different Vth's inside a cell" idea).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), np_device::DeviceError> {
//! use np_device::Mosfet;
//! use np_roadmap::TechNode;
//!
//! // A calibrated 70 nm device: Vth is solved so Ion = 750 µA/µm at 0.9 V.
//! let dev = Mosfet::for_node(TechNode::N70)?;
//! let ion = dev.ion(dev.nominal_vdd())?;
//! assert!((ion.0 - 750.0).abs() < 1.0);
//! let ioff = dev.ioff();
//! assert!(ioff.as_nano_per_micron() > 1.0); // leaky, as the paper warns
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod delay;
pub mod dualvth;
mod error;
pub mod iv;
pub mod mobility;
pub mod model;
pub mod mtcmos;
pub mod oxide;
pub mod presets;
pub mod solve;
pub mod stack;
pub mod substrate;

pub use error::DeviceError;
pub use model::Mosfet;
pub use oxide::GateKind;
pub use substrate::Substrate;
