//! MTCMOS sleep-transistor gating (Section 3.2.1, after Mutoh \[34\]).
//!
//! "Multi-Threshold CMOS (MTCMOS) gates a high-Vth transistor with a sleep
//! mode signal to virtually eliminate leakage current in idle states. The
//! sleep transistor is placed between ground and fast low-Vth CMOS logic.
//! As it is in series, it adds delay, which can be reduced by increasing
//! its area. Disadvantages include no leakage reduction in active mode,
//! increased device area, and additional overhead for routing sleep
//! signals."
//!
//! The model captures exactly those trade-offs: standby leakage collapses
//! to the high-Vth sleep device's, active leakage is untouched, the
//! virtual-ground bounce `I_peak · R_sleep` costs delay inversely in the
//! sleep transistor's width, and the area/routing overhead is explicit.

use crate::error::DeviceError;
use crate::model::Mosfet;
use np_units::{Amps, Microns, Volts};
use std::fmt;

/// Threshold offset of the sleep device over the fast logic (a strong
/// high-Vth implant).
pub const SLEEP_VTH_OFFSET: Volts = Volts(0.15);

/// Fraction of logic devices switching simultaneously in the worst case
/// (sets the peak current through the sleep transistor).
pub const SIMULTANEOUS_SWITCHING: f64 = 0.1;

/// Fixed area overhead of routing the sleep signal to every gated row.
pub const SLEEP_ROUTING_OVERHEAD: f64 = 0.03;

/// A power-gated logic block.
#[derive(Debug, Clone, PartialEq)]
pub struct MtcmosBlock {
    /// The fast low-Vth logic device.
    pub logic: Mosfet,
    /// The high-Vth sleep device.
    pub sleep: Mosfet,
    /// Total switching width of the gated logic.
    pub logic_width: Microns,
    /// Width of the sleep transistor.
    pub sleep_width: Microns,
}

impl MtcmosBlock {
    /// Gates `logic_width` of the node-calibrated logic behind a sleep
    /// transistor sized at `sleep_fraction` of the logic width.
    ///
    /// # Errors
    ///
    /// Rejects non-positive widths/fractions; propagates calibration
    /// errors.
    pub fn new(
        logic: Mosfet,
        logic_width: Microns,
        sleep_fraction: f64,
    ) -> Result<Self, DeviceError> {
        if !(logic_width.0 > 0.0) {
            return Err(DeviceError::BadParameter("logic width must be positive"));
        }
        if !(sleep_fraction > 0.0) {
            return Err(DeviceError::BadParameter("sleep fraction must be positive"));
        }
        let sleep = logic.with_vth(logic.vth + SLEEP_VTH_OFFSET);
        Ok(Self {
            logic,
            sleep,
            logic_width,
            sleep_width: Microns(logic_width.0 * sleep_fraction),
        })
    }

    /// Active-mode leakage: the logic's own (MTCMOS gives "no leakage
    /// reduction in active mode").
    pub fn active_leakage(&self) -> Amps {
        self.logic.ioff().total(self.logic_width)
    }

    /// Standby leakage: only the (high-Vth, narrower) sleep device leaks.
    pub fn standby_leakage(&self) -> Amps {
        self.sleep.ioff().total(self.sleep_width)
    }

    /// Standby-over-active leakage reduction factor.
    pub fn standby_reduction(&self) -> f64 {
        self.active_leakage().0 / self.standby_leakage().0
    }

    /// Worst-case virtual-ground bounce in active mode: the simultaneous
    /// switching current through the sleep device's on-resistance.
    ///
    /// # Errors
    ///
    /// Propagates drive-model errors.
    pub fn virtual_ground_bounce(&self, vdd: Volts) -> Result<Volts, DeviceError> {
        let i_peak = self
            .logic
            .ion(vdd)?
            .total(Microns(self.logic_width.0 * SIMULTANEOUS_SWITCHING));
        // The sleep device sits in triode at small Vds.
        let r_sleep = self.sleep.linear_resistance_ohm_um(vdd)? / self.sleep_width.0;
        Ok(Volts(i_peak.0 * r_sleep))
    }

    /// Fractional gate-delay penalty of the series sleep device: the
    /// bounce eats gate overdrive, `Δd/d ≈ ΔV / (Vdd − Vth)`.
    ///
    /// # Errors
    ///
    /// Propagates drive-model errors.
    pub fn delay_penalty(&self, vdd: Volts) -> Result<f64, DeviceError> {
        let bounce = self.virtual_ground_bounce(vdd)?;
        let vov = (vdd - self.logic.vth_at_temp()).0;
        if vov <= 0.0 {
            return Err(DeviceError::NoOverdrive {
                vdd,
                vth: self.logic.vth_at_temp(),
            });
        }
        Ok(bounce.0 / vov)
    }

    /// Area overhead: sleep-device width plus sleep-signal routing, as a
    /// fraction of the logic width.
    pub fn area_overhead(&self) -> f64 {
        self.sleep_width.0 / self.logic_width.0 + SLEEP_ROUTING_OVERHEAD
    }
}

impl fmt::Display for MtcmosBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MTCMOS block: {:.0} µm logic behind {:.0} µm sleep device ({:.0}x standby saving, +{:.0}% area)",
            self.logic_width.0,
            self.sleep_width.0,
            self.standby_reduction(),
            self.area_overhead() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::Substrate;
    use np_roadmap::TechNode;

    fn block(fraction: f64) -> MtcmosBlock {
        let logic = Mosfet::for_node(TechNode::N70).expect("calibration");
        MtcmosBlock::new(logic, Microns(10_000.0), fraction).expect("block")
    }

    #[test]
    fn standby_leakage_collapses() {
        let b = block(0.1);
        // 0.15 V implant = 10^(0.15/0.085) ≈ 58x per width, times the 10x
        // width ratio: ~580x total.
        let r = b.standby_reduction();
        assert!((100.0..=2000.0).contains(&r), "got {r:.0}x");
    }

    #[test]
    fn active_leakage_is_untouched() {
        let b = block(0.1);
        let bare = b.logic.ioff().total(b.logic_width);
        assert!((b.active_leakage().0 / bare.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wider_sleep_device_trades_area_for_speed() {
        let small = block(0.05);
        let large = block(0.3);
        let vdd = TechNode::N70.params().vdd;
        assert!(
            large.delay_penalty(vdd).unwrap() < small.delay_penalty(vdd).unwrap(),
            "area buys speed"
        );
        assert!(large.area_overhead() > small.area_overhead());
        assert!(large.standby_leakage() > small.standby_leakage());
    }

    #[test]
    fn delay_penalty_is_percent_level_at_sane_sizing() {
        let b = block(0.15);
        let p = b.delay_penalty(TechNode::N70.params().vdd).unwrap();
        assert!((0.005..=0.25).contains(&p), "penalty {:.1}%", p * 100.0);
    }

    #[test]
    fn soi_logic_gates_even_better() {
        // Footnote 3 synergy: an FD-SOI sleep stack (steeper swing) leaks
        // less at the same implant.
        let bulk = block(0.1);
        let logic = Mosfet::for_node(TechNode::N70)
            .unwrap()
            .with_substrate(Substrate::FdSoi);
        let soi = MtcmosBlock::new(logic, Microns(10_000.0), 0.1).unwrap();
        assert!(soi.standby_reduction() > bulk.standby_reduction());
    }

    #[test]
    fn bad_parameters_rejected() {
        let logic = Mosfet::for_node(TechNode::N70).unwrap();
        assert!(MtcmosBlock::new(logic.clone(), Microns(0.0), 0.1).is_err());
        assert!(MtcmosBlock::new(logic, Microns(1.0), 0.0).is_err());
    }

    #[test]
    fn display_summarizes() {
        let s = format!("{}", block(0.1));
        assert!(s.contains("MTCMOS"));
        assert!(s.contains("standby"));
    }
}
