//! Calibrated per-node devices.
//!
//! The mobility calibration ([`crate::solve::calibrate_mu0`]) runs once per
//! process and is cached; every node's device is then derived from the
//! roadmap parameters plus the solved threshold that meets the ITRS
//! 750 µA/µm target at the node's nominal supply.

use crate::error::DeviceError;
use crate::model::Mosfet;
use crate::oxide::GateKind;
use crate::solve::{calibrate_mu0, solve_vth_for_ion};
use np_roadmap::TechNode;
use np_units::{Celsius, Volts};
use std::sync::OnceLock;

/// Reference junction temperature of the paper's Table 2 analysis
/// (room temperature, exactly 300 K).
pub const T_TABLE2: Celsius = Celsius(26.85);

fn template(node: TechNode, gate: GateKind) -> Result<Mosfet, DeviceError> {
    let p = node.params();
    Ok(Mosfet {
        leff: p.leff,
        tox_phys: p.tox_phys,
        gate,
        vth: Volts(0.0),
        mu0: try_calibrated_mu0()?,
        rs_ohm_um: p.rs_ohm_um,
        temp: T_TABLE2,
        substrate: crate::substrate::Substrate::Bulk,
        node: Some(node),
    })
}

/// The workspace-wide calibrated low-field mobility (cm²/V·s), as a
/// `Result`.
///
/// Solved once so that the poly-gate 180 nm device meets 750 µA/µm at
/// 1.8 V with `Vth = 0.30 V` — the paper's Table 2 anchor. The
/// calibration runs at most once per process; both the success value and
/// a failure are cached, so a failed calibration is reported identically
/// on every call rather than retried.
///
/// # Errors
///
/// The [`DeviceError`] from the underlying solve when the calibration
/// cannot converge, which would mean the roadmap constants are
/// internally inconsistent (a programming error, not a user error).
pub fn try_calibrated_mu0() -> Result<f64, DeviceError> {
    static MU0: OnceLock<Result<f64, DeviceError>> = OnceLock::new();
    MU0.get_or_init(|| {
        let p = TechNode::N180.params();
        let proto = Mosfet {
            leff: p.leff,
            tox_phys: p.tox_phys,
            gate: GateKind::PolySilicon,
            vth: Volts(0.0),
            mu0: 500.0, // overwritten by the calibration
            rs_ohm_um: p.rs_ohm_um,
            temp: T_TABLE2,
            substrate: crate::substrate::Substrate::Bulk,
            node: Some(TechNode::N180),
        };
        calibrate_mu0(&proto, p.vdd)
    })
    .clone()
}

/// The workspace-wide calibrated low-field mobility (cm²/V·s).
///
/// The infallible convenience accessor over [`try_calibrated_mu0`]; use
/// that form where a typed error is preferable to an abort.
///
/// # Panics
///
/// Panics if the calibration cannot converge (see
/// [`try_calibrated_mu0`]'s error contract). With the shipped roadmap
/// constants this cannot happen.
pub fn calibrated_mu0() -> f64 {
    match try_calibrated_mu0() {
        Ok(mu0) => mu0,
        Err(e) => panic!("180 nm mobility calibration must converge: {e}"),
    }
}

impl Mosfet {
    /// A calibrated poly-gate device for `node`, with `Vth` solved so that
    /// `Ion` meets the ITRS target at the node's nominal supply.
    ///
    /// # Errors
    ///
    /// Propagates [`DeviceError::TargetUnreachable`] when the node's
    /// nominal supply cannot reach the target (does not occur for the six
    /// ITRS nodes, but can for user-modified targets).
    pub fn for_node(node: TechNode) -> Result<Mosfet, DeviceError> {
        Mosfet::for_node_with(node, node.params().vdd, GateKind::PolySilicon)
    }

    /// A calibrated device for `node` with an explicit supply and gate
    /// stack — the knobs of Table 2's "metal gate" and "Vdd = 0.7 V"
    /// variants.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mosfet::for_node`].
    pub fn for_node_with(
        node: TechNode,
        vdd: Volts,
        gate: GateKind,
    ) -> Result<Mosfet, DeviceError> {
        let proto = template(node, gate)?;
        let vth = solve_vth_for_ion(&proto, vdd, node.params().ion_target)?;
        Ok(proto.with_vth(vth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_units::MicroampsPerMicron;

    #[test]
    fn every_node_calibrates() {
        for node in TechNode::ALL {
            let dev = Mosfet::for_node(node).expect("calibration");
            let ion = dev.ion(node.params().vdd).expect("drive");
            assert!(
                (ion.0 - 750.0).abs() < 1.0,
                "{node}: Ion {ion} misses target"
            );
        }
    }

    #[test]
    fn anchor_node_vth_is_300mv() {
        let dev = Mosfet::for_node(TechNode::N180).unwrap();
        assert!((dev.vth.0 - 0.30).abs() < 2e-3, "got {}", dev.vth);
    }

    #[test]
    fn vth_trend_is_broadly_decreasing() {
        // Table 2: Vth falls 0.30 → 0.11 across the roadmap, with the
        // 50 nm 0.6 V point *below* the 35 nm value (the paper's
        // observation 2 that 0.6 V at 50 nm is unrealistic).
        let vth: Vec<f64> = TechNode::ALL
            .iter()
            .map(|&n| Mosfet::for_node(n).unwrap().vth.0)
            .collect();
        assert!(vth[0] > vth[2], "180 vs 100");
        assert!(vth[2] > vth[3], "100 vs 70");
        assert!(vth[4] < vth[5], "50 nm must dip below 35 nm");
    }

    #[test]
    fn fifty_nm_at_0v7_relaxes_vth() {
        // Table 2 parenthetical: 0.7 V at 50 nm lands near 0.12 V rather
        // than the 0.04 V the 0.6 V supply forces.
        let hard = Mosfet::for_node(TechNode::N50).unwrap();
        let relaxed =
            Mosfet::for_node_with(TechNode::N50, Volts(0.7), GateKind::PolySilicon).unwrap();
        assert!(relaxed.vth.0 > hard.vth.0 + 0.04);
    }

    #[test]
    fn metal_gate_allows_higher_vth() {
        // Section 3.1 observation 1: the thinner effective oxide "allows a
        // 55 mV increase in Vth" at 35 nm.
        let poly = Mosfet::for_node(TechNode::N35).unwrap();
        let metal = Mosfet::for_node_with(TechNode::N35, Volts(0.6), GateKind::Metal).unwrap();
        let delta_mv = (metal.vth - poly.vth).as_milli();
        assert!(
            (25.0..=95.0).contains(&delta_mv),
            "metal-gate Vth headroom {delta_mv:.1} mV out of band"
        );
    }

    #[test]
    fn calibrated_mu0_is_cached_and_physical() {
        let a = calibrated_mu0();
        let b = calibrated_mu0();
        assert_eq!(a, b);
        assert!((100.0..=2000.0).contains(&a), "mu0 {a}");
    }

    #[test]
    fn try_calibrated_mu0_agrees_with_infallible_accessor() {
        // Regression for the expect() that used to live inside the cache:
        // the fallible form must return the same cached value, as Ok, on
        // every call.
        let fallible = try_calibrated_mu0().expect("calibration converges");
        assert_eq!(fallible, calibrated_mu0());
        assert_eq!(try_calibrated_mu0(), try_calibrated_mu0());
    }

    #[test]
    fn custom_target_can_be_unreachable() {
        let p = TechNode::N50.params();
        let proto = template(TechNode::N50, GateKind::PolySilicon).unwrap();
        let err =
            solve_vth_for_ion(&proto, Volts(0.25), MicroampsPerMicron(p.ion_target.0)).unwrap_err();
        assert!(matches!(err, DeviceError::TargetUnreachable { .. }));
    }
}
