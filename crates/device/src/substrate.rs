//! Substrate technology and the body effect.
//!
//! Two paper hooks live here:
//!
//! * footnote 3: "Technologies such as fully-depleted SOI may reduce this
//!   value [the 85 mV subthreshold swing] considerably (i.e. by 20%),
//!   making lower thresholds feasible given fixed Ioff constraints" —
//!   [`Substrate::FdSoi`];
//! * Section 3.2.1: "substrate bias controlled Vth … body bias is less
//!   effective at controlling Vth in scaled devices" — [`BodyBias`], whose
//!   coefficient shrinks along the roadmap.

use np_roadmap::TechNode;
use np_units::Volts;
use std::fmt;

/// Substrate technology of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Substrate {
    /// Conventional bulk CMOS (the paper's baseline).
    #[default]
    Bulk,
    /// Fully-depleted SOI: near-ideal gate control, ~20 % lower
    /// subthreshold swing (footnote 3).
    FdSoi,
}

impl Substrate {
    /// Multiplier on the subthreshold swing parameter.
    pub fn swing_factor(self) -> f64 {
        match self {
            Substrate::Bulk => 1.0,
            Substrate::FdSoi => 0.8,
        }
    }

    /// The threshold reduction this substrate affords at *equal leakage*
    /// relative to bulk: with `S' = k·S`, `Ioff = I0·10^(−Vth/S)` stays
    /// fixed when `Vth' = k·Vth`.
    pub fn vth_headroom(self, bulk_vth: Volts) -> Volts {
        Volts(bulk_vth.0 * (1.0 - self.swing_factor()))
    }
}

impl fmt::Display for Substrate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Substrate::Bulk => write!(f, "bulk CMOS"),
            Substrate::FdSoi => write!(f, "FD-SOI"),
        }
    }
}

/// Reverse-body-bias threshold control (Section 3.2.1, ref. \[36\]).
///
/// The body-effect coefficient `γ_eff = dVth/dVbs` shrinks with scaling
/// (thinner oxides and higher channel doping decouple the body), which is
/// exactly why the paper rates substrate biasing as a poorly scaling
/// standby-leakage technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyBias {
    /// Effective body coefficient, V of Vth per V of reverse bias.
    pub gamma_eff: f64,
    /// Maximum reverse bias the junctions tolerate.
    pub max_reverse_bias: Volts,
}

impl BodyBias {
    /// The body-bias capability of a roadmap node. The coefficient decays
    /// from a healthy 0.25 at 180 nm to under 0.08 at 35 nm.
    pub fn for_node(node: TechNode) -> Self {
        let gamma_eff = match node {
            TechNode::N180 => 0.25,
            TechNode::N130 => 0.20,
            TechNode::N100 => 0.16,
            TechNode::N70 => 0.12,
            TechNode::N50 => 0.09,
            TechNode::N35 => 0.07,
        };
        BodyBias {
            gamma_eff,
            max_reverse_bias: Volts(1.0),
        }
    }

    /// Threshold shift at a given reverse body bias (clamped to the
    /// junction limit).
    pub fn vth_shift(&self, reverse_bias: Volts) -> Volts {
        let v = reverse_bias.0.clamp(0.0, self.max_reverse_bias.0);
        Volts(self.gamma_eff * v)
    }

    /// Standby-leakage reduction factor achievable with full reverse bias
    /// for a device with subthreshold swing `s`: `10^(ΔVth/S)`.
    pub fn standby_leakage_reduction(&self, swing: Volts) -> f64 {
        10f64.powf(self.vth_shift(self.max_reverse_bias).0 / swing.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soi_swing_is_20_percent_lower() {
        assert!((Substrate::FdSoi.swing_factor() - 0.8).abs() < 1e-12);
        assert_eq!(Substrate::Bulk.swing_factor(), 1.0);
    }

    #[test]
    fn soi_buys_vth_headroom_at_fixed_ioff() {
        // Footnote 3: lower swing -> lower threshold at the same Ioff.
        let h = Substrate::FdSoi.vth_headroom(Volts(0.30));
        assert!((h.0 - 0.06).abs() < 1e-12);
    }

    #[test]
    fn body_effect_fades_with_scaling() {
        let mut prev = f64::INFINITY;
        for node in TechNode::ALL {
            let g = BodyBias::for_node(node).gamma_eff;
            assert!(g < prev, "γ_eff must shrink");
            prev = g;
        }
        // 180 nm: >3x the 35 nm authority — "less effective in scaled
        // devices".
        assert!(
            BodyBias::for_node(TechNode::N180).gamma_eff
                > 3.0 * BodyBias::for_node(TechNode::N35).gamma_eff
        );
    }

    #[test]
    fn standby_reduction_collapses_along_roadmap() {
        let s = Volts(0.085);
        let early = BodyBias::for_node(TechNode::N180).standby_leakage_reduction(s);
        let late = BodyBias::for_node(TechNode::N35).standby_leakage_reduction(s);
        assert!(early > 100.0, "strong knob today: {early:.0}x");
        assert!(late < 10.0, "weak knob at 35 nm: {late:.1}x");
    }

    #[test]
    fn bias_clamps_at_junction_limit() {
        let b = BodyBias::for_node(TechNode::N100);
        assert_eq!(b.vth_shift(Volts(5.0)), b.vth_shift(Volts(1.0)));
        assert_eq!(b.vth_shift(Volts(-1.0)), Volts(0.0));
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Substrate::Bulk), "bulk CMOS");
        assert_eq!(format!("{}", Substrate::FdSoi), "FD-SOI");
    }
}
