//! Effective carrier mobility.
//!
//! Eq. 3's `µeff` "is a function of gate voltage and Tox": we use the
//! classic first-order vertical-field degradation
//!
//! ```text
//! µeff = µ0 / (1 + θ · (Vgs − Vth)),   θ = θ_k / Tox,e
//! ```
//!
//! where the degradation coefficient scales inversely with the electrical
//! oxide thickness (thinner oxide → higher vertical field at the same
//! overdrive). A `(300/T)^1.5` lattice-scattering factor covers the
//! hot-junction analyses.

use np_units::{Kelvin, Nanometers, Volts};

/// Mobility-degradation constant `θ_k` in nm/V: `θ [1/V] = θ_k / Tox,e [nm]`.
///
/// Chosen so that a 180 nm-class device (Tox,e ≈ 3 nm, overdrive 1.5 V)
/// shows the textbook ~2× high-field mobility reduction.
pub const THETA_NM_PER_V: f64 = 4.0;

/// Reference temperature for mobility and subthreshold parameters (the
/// paper quotes room-temperature values).
pub const T_REF_K: f64 = 300.0;

/// Electron saturation velocity in cm/s.
pub const VSAT_CM_PER_S: f64 = 1.0e7;

/// Effective mobility in cm²/V·s at overdrive `vov = Vgs − Vth`.
///
/// Monotone decreasing in overdrive and in temperature; equals `mu0` at
/// zero overdrive and `T_REF_K`.
///
/// # Panics
///
/// Panics if `mu0`, `tox_e` or the absolute temperature is not positive.
pub fn mu_eff(mu0: f64, vov: Volts, tox_e: Nanometers, temp: Kelvin) -> f64 {
    assert!(mu0 > 0.0, "mu0 must be positive");
    assert!(tox_e.0 > 0.0, "electrical oxide must be positive");
    assert!(temp.0 > 0.0, "absolute temperature must be positive");
    let theta = THETA_NM_PER_V / tox_e.0;
    let lattice = (T_REF_K / temp.0).powf(1.5);
    mu0 * lattice / (1.0 + theta * vov.0.max(0.0))
}

/// Velocity-saturation critical field `Esat = 2·vsat / µeff`, in V/cm.
///
/// # Panics
///
/// Panics if `mu_eff` is not positive.
pub fn esat_v_per_cm(mu_eff: f64) -> f64 {
    assert!(mu_eff > 0.0, "mobility must be positive");
    2.0 * VSAT_CM_PER_S / mu_eff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_overdrive_recovers_mu0() {
        let m = mu_eff(400.0, Volts(0.0), Nanometers(2.0), Kelvin(300.0));
        assert!((m - 400.0).abs() < 1e-9);
    }

    #[test]
    fn degrades_with_overdrive() {
        let lo = mu_eff(400.0, Volts(0.5), Nanometers(2.0), Kelvin(300.0));
        let hi = mu_eff(400.0, Volts(1.5), Nanometers(2.0), Kelvin(300.0));
        assert!(hi < lo);
        // θ = 2 /V at 2 nm: 1.5 V overdrive → 1/(1+3) = 4x reduction.
        assert!((hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn degrades_faster_for_thinner_oxide() {
        let thick = mu_eff(400.0, Volts(0.5), Nanometers(3.0), Kelvin(300.0));
        let thin = mu_eff(400.0, Volts(0.5), Nanometers(1.0), Kelvin(300.0));
        assert!(thin < thick);
    }

    #[test]
    fn hot_junction_reduces_mobility() {
        let cold = mu_eff(400.0, Volts(0.5), Nanometers(2.0), Kelvin(300.0));
        let hot = mu_eff(400.0, Volts(0.5), Nanometers(2.0), Kelvin(358.15));
        assert!(hot < cold);
        assert!((hot / cold - (300.0f64 / 358.15).powf(1.5)).abs() < 1e-12);
    }

    #[test]
    fn negative_overdrive_clamps() {
        let m = mu_eff(400.0, Volts(-1.0), Nanometers(2.0), Kelvin(300.0));
        assert!((m - 400.0).abs() < 1e-9);
    }

    #[test]
    fn esat_magnitude() {
        // µeff = 200 cm²/Vs → Esat = 1e5 V/cm = 10 V/µm.
        assert!((esat_v_per_cm(200.0) - 1e5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "mu0 must be positive")]
    fn rejects_bad_mu0() {
        let _ = mu_eff(0.0, Volts(0.1), Nanometers(2.0), Kelvin(300.0));
    }
}
