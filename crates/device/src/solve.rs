//! Threshold-voltage solving and the one-time mobility calibration.
//!
//! The paper's Table 2 workflow: "The Vth for each technology is set to
//! meet 750 µA/µm for Ion". [`solve_vth_for_ion`] inverts the Eq. 2/3 drive
//! model for `Vth` by bisection (the model is strictly decreasing in
//! `Vth`). [`calibrate_mu0`] fixes the single free scale factor of the
//! model — the low-field mobility — so that the solved 180 nm threshold
//! lands on the paper's anchor value of 0.30 V.

use crate::error::DeviceError;
use crate::model::Mosfet;
use np_units::math::bisect;
use np_units::{guard, MicroampsPerMicron, Volts};

/// Lowest threshold the solver will consider. Slightly negative thresholds
/// are physical for the most aggressive projections (the paper's 50 nm
/// 0.6 V case lands at 0.04 V; pushing targets harder can cross zero).
pub const VTH_SEARCH_MIN: Volts = Volts(-0.25);

/// The paper's Table 2 anchor: the 180 nm node solves to `Vth = 0.30 V`.
pub const VTH_ANCHOR_180NM: Volts = Volts(0.30);

/// Solves the threshold voltage at which the device delivers `target`
/// drive current at supply `vdd` (paper Table 2 workflow).
///
/// # Errors
///
/// [`DeviceError::TargetUnreachable`] when even `Vth = −0.25 V` cannot
/// reach the target (supply too low for the technology), or when the
/// target is not positive; bisection failures propagate as
/// [`DeviceError::Solve`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_device::DeviceError> {
/// use np_device::{solve::solve_vth_for_ion, GateKind, Mosfet};
/// use np_units::{Celsius, MicroampsPerMicron, Nanometers, Volts};
///
/// let template = Mosfet {
///     leff: Nanometers(140.0),
///     tox_phys: Nanometers(2.25),
///     gate: GateKind::PolySilicon,
///     vth: Volts(0.0), // overwritten by the solve
///     mu0: 500.0,
///     rs_ohm_um: 60.0,
///     temp: Celsius(26.85),
///     substrate: np_device::substrate::Substrate::Bulk,
///     node: None,
/// };
/// let vth = solve_vth_for_ion(&template, Volts(1.8), MicroampsPerMicron(750.0))?;
/// let check = template.with_vth(vth).ion(Volts(1.8))?;
/// assert!((check.0 - 750.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn solve_vth_for_ion(
    template: &Mosfet,
    vdd: Volts,
    target: MicroampsPerMicron,
) -> Result<Volts, DeviceError> {
    let ctx = "solve_vth_for_ion";
    guard::finite(vdd.0, "Vdd", ctx)?;
    guard::finite(target.0, "Ion target", ctx)?;
    if !(target.0 > 0.0) {
        return Err(DeviceError::BadParameter("Ion target must be positive"));
    }
    let _span = np_telemetry::span("device.solve_vth");
    let evals = std::cell::Cell::new(0u64);
    // The labeled block funnels every exit through one point so the
    // drive-model evaluation count is recorded exactly once.
    let result = 'solve: {
        let vth_max = vdd - Volts(0.02);
        if vth_max <= VTH_SEARCH_MIN {
            break 'solve Err(DeviceError::TargetUnreachable {
                vdd,
                target_ua_per_um: target.0,
            });
        }
        let ion_at = |vth: f64| -> f64 {
            evals.set(evals.get() + 1);
            template
                .with_vth(Volts(vth))
                .ion(vdd)
                .map(|i| i.0)
                .unwrap_or(0.0)
        };
        // Ion is strictly decreasing in Vth; check reachability at the lower end.
        if ion_at(VTH_SEARCH_MIN.0) < target.0 {
            break 'solve Err(DeviceError::TargetUnreachable {
                vdd,
                target_ua_per_um: target.0,
            });
        }
        if ion_at(vth_max.0) > target.0 {
            // Even a threshold a hair under the supply over-delivers: the
            // device is faster than the target everywhere in the window.
            break 'solve Err(DeviceError::TargetUnreachable {
                vdd,
                target_ua_per_um: target.0,
            });
        }
        match bisect(
            |vth| ion_at(vth) - target.0,
            VTH_SEARCH_MIN.0,
            vth_max.0,
            1e-7,
        ) {
            Ok(root) => Ok(Volts(root)),
            Err(e) => Err(e.into()),
        }
    };
    np_telemetry::counter("device.solve_vth.evals", evals.get());
    result
}

/// Calibrates the low-field mobility so that the 180 nm device template
/// solves to [`VTH_ANCHOR_180NM`] at its nominal conditions.
///
/// This is the model's single fitted constant (DESIGN.md "Calibration"):
/// all other nodes are then *predictions*.
///
/// # Errors
///
/// Propagates solver failures; returns [`DeviceError::Solve`] when no
/// mobility in the physical window `[100, 2000] cm²/Vs` anchors the node.
pub fn calibrate_mu0(template_180nm: &Mosfet, vdd: Volts) -> Result<f64, DeviceError> {
    guard::finite(vdd.0, "Vdd", "calibrate_mu0")?;
    let _span = np_telemetry::span("device.calibrate_mu0");
    let solved_vth = |mu0: f64| -> f64 {
        let mut d = template_180nm.clone();
        d.mu0 = mu0;
        solve_vth_for_ion(&d, vdd, MicroampsPerMicron(750.0))
            .map(|v| v.0)
            .unwrap_or(-1.0)
    };
    // Higher mobility → more drive → the target is met at a higher Vth.
    let mu0 = bisect(
        |mu| solved_vth(mu) - VTH_ANCHOR_180NM.0,
        100.0,
        2000.0,
        1e-4,
    )?;
    Ok(mu0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oxide::GateKind;
    use np_units::{Celsius, Nanometers};

    fn template() -> Mosfet {
        Mosfet {
            leff: Nanometers(140.0),
            tox_phys: Nanometers(2.25),
            gate: GateKind::PolySilicon,
            vth: Volts(0.0),
            mu0: 500.0,
            rs_ohm_um: 60.0,
            temp: Celsius(26.85),
            substrate: crate::substrate::Substrate::Bulk,
            node: None,
        }
    }

    #[test]
    fn solve_meets_target() {
        let vth = solve_vth_for_ion(&template(), Volts(1.8), MicroampsPerMicron(750.0)).unwrap();
        let ion = template().with_vth(vth).ion(Volts(1.8)).unwrap();
        assert!((ion.0 - 750.0).abs() < 0.5);
        assert!(vth.0 > 0.0 && vth.0 < 1.0);
    }

    #[test]
    fn harder_targets_need_lower_vth() {
        let easy = solve_vth_for_ion(&template(), Volts(1.8), MicroampsPerMicron(500.0)).unwrap();
        let hard = solve_vth_for_ion(&template(), Volts(1.8), MicroampsPerMicron(900.0)).unwrap();
        assert!(hard < easy);
    }

    #[test]
    fn lower_supply_needs_lower_vth() {
        let hi = solve_vth_for_ion(&template(), Volts(1.8), MicroampsPerMicron(750.0)).unwrap();
        let lo = solve_vth_for_ion(&template(), Volts(1.2), MicroampsPerMicron(750.0)).unwrap();
        assert!(lo < hi);
    }

    #[test]
    fn unreachable_target_is_reported() {
        let err =
            solve_vth_for_ion(&template(), Volts(0.3), MicroampsPerMicron(750.0)).unwrap_err();
        assert!(matches!(err, DeviceError::TargetUnreachable { .. }));
    }

    #[test]
    fn non_positive_target_rejected() {
        assert!(matches!(
            solve_vth_for_ion(&template(), Volts(1.8), MicroampsPerMicron(0.0)),
            Err(DeviceError::BadParameter(_))
        ));
    }

    #[test]
    fn calibration_anchors_180nm_at_300mv() {
        let mu0 = calibrate_mu0(&template(), Volts(1.8)).unwrap();
        assert!((100.0..=2000.0).contains(&mu0));
        let mut d = template();
        d.mu0 = mu0;
        let vth = solve_vth_for_ion(&d, Volts(1.8), MicroampsPerMicron(750.0)).unwrap();
        assert!((vth.0 - 0.30).abs() < 2e-3, "got {vth}");
    }
}
