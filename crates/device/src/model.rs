//! The compact MOSFET model (paper Eqs. 2–4).

use crate::error::DeviceError;
use crate::mobility::{self, T_REF_K};
use crate::oxide::{self, GateKind};
use crate::substrate::Substrate;
use np_roadmap::TechNode;
use np_units::{
    guard, Celsius, FaradsPerCm2, FaradsPerMicron, Kelvin, MicroampsPerMicron, Nanometers, Volts,
    VoltsPerMicron,
};
use std::fmt;

/// Room-temperature subthreshold swing parameter, "85 mV ... throughout
/// scaling" (Eq. 4 note).
pub const SUBTHRESHOLD_SWING_V: f64 = 0.085;

/// Eq. 4 prefactor: `Ioff = 10 µA/µm` at `Vth = 0`.
pub const IOFF_PREFACTOR_UA_PER_UM: f64 = 10.0;

/// Threshold-voltage temperature coefficient, V/K (Vth falls as the die
/// heats, compounding the subthreshold-swing degradation).
pub const VTH_TEMP_COEFF_V_PER_K: f64 = -0.8e-3;

/// Gate overlap/fringe capacitance per micron of width, farads.
/// A constant ≈0.3 fF/µm is representative across the roadmap.
pub const OVERLAP_CAP_F_PER_UM: f64 = 0.3e-15;

/// Drain-induced barrier lowering coefficient `η` (V/V): each volt of
/// drain bias lowers the effective threshold by `η` volts. This is the
/// mechanism behind the paper's "static power decays roughly quadratically
/// with Vdd reductions (given a fixed Vth)" (Section 3.3).
pub const DIBL_ETA: f64 = 0.08;

/// A width-normalized NMOS transistor in the paper's compact model.
///
/// All currents are per micron of gate width; multiply by a width to get
/// device currents. The struct is plain data ([C-STRUCT-PRIVATE] is
/// deliberately relaxed: every field is an independent physical knob and
/// the model functions validate at evaluation time).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_device::DeviceError> {
/// use np_device::{GateKind, Mosfet};
/// use np_units::{Nanometers, Volts};
///
/// let dev = Mosfet {
///     leff: Nanometers(45.0),
///     tox_phys: Nanometers(1.08),
///     gate: GateKind::PolySilicon,
///     vth: Volts(0.20),
///     mu0: 500.0,
///     rs_ohm_um: 60.0,
///     temp: np_units::Celsius(27.0),
///     substrate: np_device::substrate::Substrate::Bulk,
///     node: None,
/// };
/// let ion = dev.ion(Volts(0.9))?;
/// assert!(ion.0 > 100.0 && ion.0 < 2000.0);
/// # Ok(())
/// # }
/// ```
///
/// [C-STRUCT-PRIVATE]: https://rust-lang.github.io/api-guidelines/future-proofing.html
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    /// Effective (as-etched) channel length.
    pub leff: Nanometers,
    /// Physical gate-oxide thickness.
    pub tox_phys: Nanometers,
    /// Gate-stack technology (poly / metal / ideal).
    pub gate: GateKind,
    /// Threshold voltage at the reference temperature (300 K).
    pub vth: Volts,
    /// Low-field mobility, cm²/V·s (calibrated once per workspace, see
    /// [`crate::presets`]).
    pub mu0: f64,
    /// Parasitic source resistance, Ω·µm.
    pub rs_ohm_um: f64,
    /// Junction temperature for evaluation.
    pub temp: Celsius,
    /// Substrate technology (bulk or FD-SOI, footnote 3).
    pub substrate: Substrate,
    /// The roadmap node this device was built for, when applicable.
    pub node: Option<TechNode>,
}

impl Mosfet {
    /// Returns a copy with a different threshold voltage.
    pub fn with_vth(&self, vth: Volts) -> Self {
        Self {
            vth,
            ..self.clone()
        }
    }

    /// Returns a copy evaluated at a different junction temperature.
    pub fn with_temperature(&self, temp: Celsius) -> Self {
        Self {
            temp,
            ..self.clone()
        }
    }

    /// Returns a copy with a different gate stack.
    pub fn with_gate(&self, gate: GateKind) -> Self {
        Self {
            gate,
            ..self.clone()
        }
    }

    /// The nominal supply of the device's roadmap node, or a conservative
    /// 1 V when the device is free-standing.
    pub fn nominal_vdd(&self) -> Volts {
        self.node.map_or(Volts(1.0), |n| n.params().vdd)
    }

    /// Junction temperature on the absolute scale.
    pub fn temp_kelvin(&self) -> Kelvin {
        self.temp.to_kelvin()
    }

    /// Electrical oxide thickness `Tox,e` (Section 3.1 observation 1).
    pub fn tox_electrical(&self) -> Nanometers {
        oxide::electrical_tox(self.tox_phys, self.gate)
    }

    /// Electrical gate capacitance per area, `Coxe`.
    pub fn coxe(&self) -> FaradsPerCm2 {
        oxide::coxe(self.tox_phys, self.gate)
    }

    /// Effective mobility at supply `vdd` (Eq. 3's `µeff(Vgs, Tox)`).
    pub fn mu_eff(&self, vdd: Volts) -> f64 {
        let vov = Volts((vdd - self.vth_at_temp()).0.max(0.0));
        mobility::mu_eff(self.mu0, vov, self.tox_electrical(), self.temp_kelvin())
    }

    /// Velocity-saturation critical field at supply `vdd`.
    pub fn esat(&self, vdd: Volts) -> VoltsPerMicron {
        VoltsPerMicron(mobility::esat_v_per_cm(self.mu_eff(vdd)) * 1e-4)
    }

    /// The temperature-shifted threshold (−0.8 mV/K above 300 K).
    pub fn vth_at_temp(&self) -> Volts {
        let dt = self.temp_kelvin().0 - T_REF_K;
        self.vth + Volts(VTH_TEMP_COEFF_V_PER_K * dt)
    }

    /// The temperature-scaled subthreshold swing,
    /// `S(T) = 85 mV · T/300`, reduced by 20 % on FD-SOI substrates
    /// (footnote 3).
    pub fn subthreshold_swing(&self) -> Volts {
        Volts(SUBTHRESHOLD_SWING_V * self.substrate.swing_factor() * self.temp_kelvin().0 / T_REF_K)
    }

    /// Returns a copy on a different substrate technology.
    pub fn with_substrate(&self, substrate: Substrate) -> Self {
        Self {
            substrate,
            ..self.clone()
        }
    }

    /// Eq. 3 — intrinsic saturation current before the source-resistance
    /// correction, per micron of width:
    ///
    /// ```text
    /// Idsat0 = (W µeff Coxe / 2 Leff) · (Vdd−Vth)² / (1 + (Vdd−Vth)/(Esat·Leff))
    /// ```
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoOverdrive`] when `Vdd ≤ Vth`;
    /// [`DeviceError::BadParameter`] for unphysical geometry;
    /// [`DeviceError::NonFinite`] for a NaN/infinite supply or field, or
    /// an overdrive so large the effective mobility underflows to zero.
    pub fn idsat0(&self, vdd: Volts) -> Result<MicroampsPerMicron, DeviceError> {
        self.validate()?;
        guard::finite(vdd.0, "Vdd", "Mosfet::idsat0")?;
        let vth = self.vth_at_temp();
        let vov = (vdd - vth).0;
        if vov <= 0.0 {
            return Err(DeviceError::NoOverdrive { vdd, vth });
        }
        // An extreme (but finite) overdrive underflows the mobility to
        // zero; surface that as a domain error instead of letting the
        // Esat helper's positivity assertion fire.
        let mu = self.mu_eff(vdd); // cm²/Vs
        guard::finite_positive(mu, "effective mobility", "Mosfet::idsat0")?;
        let coxe = self.coxe().0; // F/cm²
        let leff_cm = self.leff.as_cm();
        let esat_l = mobility::esat_v_per_cm(mu) * leff_cm; // volts
        let width_cm = 1e-4; // per µm of width
        let amps = (mu * coxe * width_cm / (2.0 * leff_cm)) * vov * vov / (1.0 + vov / esat_l);
        Ok(MicroampsPerMicron(amps * 1e6))
    }

    /// Eq. 2 — saturation drive current with the first-order parasitic
    /// source-resistance degradation (Chen & Hu form; see DESIGN.md for the
    /// numerically robust division form used here):
    ///
    /// ```text
    /// Ion = Idsat0 / (1 + Idsat0·Rs·(2/(Vdd−Vth) − 1/(Vdd−Vth + Esat·Leff)))
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`Mosfet::idsat0`].
    pub fn ion(&self, vdd: Volts) -> Result<MicroampsPerMicron, DeviceError> {
        let idsat0 = self.idsat0(vdd)?; // µA/µm
        let vov = (vdd - self.vth_at_temp()).0;
        let esat_l = self.esat(vdd).0 * self.leff.to_microns().0; // volts
        let i_amps_um = idsat0.0 * 1e-6; // A per µm width
        let rs = self.rs_ohm_um; // Ω·µm -> (A/µm)·(Ω·µm) = V
        let degradation = i_amps_um * rs * (2.0 / vov - 1.0 / (vov + esat_l));
        Ok(MicroampsPerMicron(idsat0.0 / (1.0 + degradation.max(0.0))))
    }

    /// Eq. 4 — subthreshold off current per micron of width,
    /// `Ioff = 10 µA/µm × 10^(−Vth/S)`, with `S` and `Vth`
    /// temperature-scaled and a `(T/300)²` carrier-statistics prefactor.
    ///
    /// At 300 K and `Vth = 0.3 V` this is the paper's ≈3 nA/µm.
    pub fn ioff(&self) -> MicroampsPerMicron {
        let t_ratio = self.temp_kelvin().0 / T_REF_K;
        let prefactor = IOFF_PREFACTOR_UA_PER_UM * t_ratio * t_ratio;
        let s = self.subthreshold_swing().0;
        MicroampsPerMicron(prefactor * 10f64.powf(-self.vth_at_temp().0 / s))
    }

    /// Off current when the drain sits at `vds` instead of the nominal
    /// supply: [`Mosfet::ioff`] scaled by the DIBL factor
    /// `10^(η·(Vds − Vdd_nom)/S)`.
    ///
    /// Lowering the rail therefore shrinks leakage *super-linearly*: the
    /// `Vdd·Ioff(Vdd)` product falls roughly quadratically, the paper's
    /// Section 3.3 observation.
    pub fn ioff_at_drain(&self, vds: Volts) -> MicroampsPerMicron {
        let s = self.subthreshold_swing().0;
        let dibl = 10f64.powf(DIBL_ETA * (vds - self.nominal_vdd()).0 / s);
        MicroampsPerMicron(self.ioff().0 * dibl)
    }

    /// Linear-region (triode) on-resistance per micron of width, Ω·µm:
    /// `R·W = Leff / (µeff·Coxe·(Vgs − Vth))`. This is what a series
    /// switch (an MTCMOS sleep device, a pass gate) presents at small
    /// drain bias.
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoOverdrive`] when `Vgs ≤ Vth`;
    /// [`DeviceError::BadParameter`] for unphysical geometry.
    pub fn linear_resistance_ohm_um(&self, vgs: Volts) -> Result<f64, DeviceError> {
        self.validate()?;
        guard::finite(vgs.0, "Vgs", "Mosfet::linear_resistance_ohm_um")?;
        let vov = (vgs - self.vth_at_temp()).0;
        if vov <= 0.0 {
            return Err(DeviceError::NoOverdrive {
                vdd: vgs,
                vth: self.vth_at_temp(),
            });
        }
        let mu = self.mu_eff(vgs); // cm²/Vs
        guard::finite_positive(mu, "effective mobility", "Mosfet::linear_resistance_ohm_um")?;
        let coxe = self.coxe().0; // F/cm²
                                  // Conductance per µm of width: µ·Coxe·(1 µm / Leff)·Vov, in S/µm.
        let g_per_um = mu * coxe * (1e-4 / self.leff.as_cm()) * vov;
        Ok(1.0 / g_per_um)
    }

    /// Gate capacitance per micron of width: `Coxe·Leff` plus a constant
    /// overlap/fringe term. Used for FO4 loads and dynamic power.
    pub fn gate_cap_per_um(&self) -> FaradsPerMicron {
        let area_cap = self.coxe().0 * self.leff.as_cm() * 1e-4; // F per µm width
        FaradsPerMicron(area_cap + OVERLAP_CAP_F_PER_UM)
    }

    /// Validates the device's fields: geometry positive, mobility and
    /// parasitics physical, every field finite. Called by the fallible
    /// model entry points before evaluation so a NaN planted in a public
    /// field surfaces as a typed error at the first use, not as NaN
    /// output three models downstream.
    ///
    /// # Errors
    ///
    /// [`DeviceError::BadParameter`] for out-of-domain values,
    /// [`DeviceError::NonFinite`] for NaN/infinite fields.
    pub fn validate(&self) -> Result<(), DeviceError> {
        let ctx = "Mosfet::validate";
        guard::finite(self.leff.0, "Leff", ctx)?;
        guard::finite(self.tox_phys.0, "Tox", ctx)?;
        guard::finite(self.mu0, "mu0", ctx)?;
        guard::finite(self.rs_ohm_um, "Rs", ctx)?;
        guard::finite(self.vth.0, "Vth", ctx)?;
        guard::finite(self.temp.0, "temperature", ctx)?;
        if !(self.leff.0 > 0.0) {
            return Err(DeviceError::BadParameter("Leff must be positive"));
        }
        if !(self.tox_phys.0 > 0.0) {
            return Err(DeviceError::BadParameter("Tox must be positive"));
        }
        if !(self.mu0 > 0.0) {
            return Err(DeviceError::BadParameter("mu0 must be positive"));
        }
        if self.rs_ohm_um < 0.0 {
            return Err(DeviceError::BadParameter("Rs must be non-negative"));
        }
        if !(self.temp_kelvin().0 > 0.0) {
            return Err(DeviceError::BadParameter("temperature below absolute zero"));
        }
        Ok(())
    }
}

impl fmt::Display for Mosfet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NMOS Leff={:.0} Tox={:.2} ({}) Vth={:.0} mV @ {:.0}",
            self.leff,
            self.tox_phys,
            self.gate,
            self.vth.as_milli(),
            self.temp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev_180nm_like() -> Mosfet {
        Mosfet {
            leff: Nanometers(140.0),
            tox_phys: Nanometers(2.25),
            gate: GateKind::PolySilicon,
            vth: Volts(0.30),
            mu0: 500.0,
            rs_ohm_um: 60.0,
            temp: Celsius(26.85), // exactly 300 K
            substrate: Substrate::Bulk,
            node: None,
        }
    }

    #[test]
    fn ioff_anchor_3na_at_vth_300mv() {
        // Eq. 4 at room temperature: 10 µA × 10^(-300/85) ≈ 2.96 nA/µm —
        // the paper's Table 2 value for 180 nm.
        let d = dev_180nm_like();
        let ioff = d.ioff().as_nano_per_micron();
        assert!((ioff - 2.96).abs() < 0.05, "got {ioff}");
    }

    #[test]
    fn ioff_ratio_per_100mv_is_15x() {
        // Section 3.2.2: "about a 15X increase in Ioff for 100 mV reduction
        // in Vth", node-independent.
        let d = dev_180nm_like();
        let ratio = d.with_vth(Volts(0.20)).ioff() / d.ioff();
        assert!((ratio - 15.0).abs() < 0.2, "got {ratio}");
    }

    #[test]
    fn ion_is_positive_and_less_than_idsat0() {
        let d = dev_180nm_like();
        let idsat0 = d.idsat0(Volts(1.8)).unwrap();
        let ion = d.ion(Volts(1.8)).unwrap();
        assert!(ion.0 > 0.0);
        assert!(ion < idsat0, "Rs must degrade drive");
    }

    #[test]
    fn ion_magnitude_is_hundreds_of_ua_per_um() {
        let ion = dev_180nm_like().ion(Volts(1.8)).unwrap();
        assert!((300.0..=1500.0).contains(&ion.0), "got {ion}");
    }

    #[test]
    fn zero_rs_recovers_idsat0() {
        let mut d = dev_180nm_like();
        d.rs_ohm_um = 0.0;
        let idsat0 = d.idsat0(Volts(1.8)).unwrap();
        let ion = d.ion(Volts(1.8)).unwrap();
        assert!((ion.0 - idsat0.0).abs() < 1e-9);
    }

    #[test]
    fn no_overdrive_is_an_error() {
        let d = dev_180nm_like();
        assert!(matches!(
            d.ion(Volts(0.25)),
            Err(DeviceError::NoOverdrive { .. })
        ));
        assert!(matches!(
            d.ion(Volts(0.30)),
            Err(DeviceError::NoOverdrive { .. })
        ));
    }

    #[test]
    fn ion_monotone_in_vdd() {
        let d = dev_180nm_like();
        let mut prev = 0.0;
        for v in [0.6, 0.9, 1.2, 1.5, 1.8] {
            let i = d.ion(Volts(v)).unwrap().0;
            assert!(i > prev, "Ion must rise with Vdd");
            prev = i;
        }
    }

    #[test]
    fn ion_monotone_decreasing_in_vth() {
        let d = dev_180nm_like();
        let hi = d.with_vth(Volts(0.40)).ion(Volts(1.8)).unwrap();
        let lo = d.with_vth(Volts(0.20)).ion(Volts(1.8)).unwrap();
        assert!(lo > hi);
    }

    #[test]
    fn hot_junction_raises_ioff_and_lowers_ion() {
        let cold = dev_180nm_like();
        let hot = cold.with_temperature(Celsius(85.0));
        assert!(hot.ioff() > cold.ioff() * 5.0, "85°C leakage blow-up");
        assert!(hot.ion(Volts(1.8)).unwrap() < cold.ion(Volts(1.8)).unwrap());
    }

    #[test]
    fn metal_gate_increases_drive() {
        let poly = dev_180nm_like();
        let metal = poly.with_gate(GateKind::Metal);
        assert!(metal.ion(Volts(1.8)).unwrap() > poly.ion(Volts(1.8)).unwrap());
    }

    #[test]
    fn gate_cap_is_about_2ff_per_um_at_180nm() {
        let c = dev_180nm_like().gate_cap_per_um();
        let ff = c.0 * 1e15;
        assert!((1.2..=2.8).contains(&ff), "got {ff} fF/µm");
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let mut d = dev_180nm_like();
        d.leff = Nanometers(0.0);
        assert!(matches!(
            d.ion(Volts(1.8)),
            Err(DeviceError::BadParameter(_))
        ));
        let mut d = dev_180nm_like();
        d.rs_ohm_um = -1.0;
        assert!(d.ion(Volts(1.8)).is_err());
    }

    #[test]
    fn subthreshold_swing_scales_with_t() {
        let d = dev_180nm_like().with_temperature(Celsius(85.0));
        let s = d.subthreshold_swing().as_milli();
        assert!((s - 85.0 * 358.15 / 300.0).abs() < 0.1);
    }

    #[test]
    fn display_mentions_gate_and_vth() {
        let s = format!("{}", dev_180nm_like());
        assert!(s.contains("poly-Si"));
        assert!(s.contains("300 mV"));
    }
}
// Additional tests for the drain-bias-dependent leakage.
#[cfg(test)]
mod dibl_tests {
    use super::*;
    use np_roadmap::TechNode;

    #[test]
    fn ioff_at_nominal_drain_matches_eq4() {
        let d = Mosfet::for_node(TechNode::N35).unwrap();
        let a = d.ioff();
        let b = d.ioff_at_drain(d.nominal_vdd());
        assert!((a.0 - b.0).abs() < 1e-12);
    }

    #[test]
    fn lower_drain_leaks_less() {
        let d = Mosfet::for_node(TechNode::N35).unwrap();
        let half = d.ioff_at_drain(Volts(0.3));
        assert!(half < d.ioff());
        // Vdd*Ioff(Vdd) falls faster than linearly: the paper's "roughly
        // quadratic" static-power decay at fixed Vth.
        let p_nom = d.nominal_vdd().0 * d.ioff().0;
        let p_half = 0.3 * half.0;
        assert!(p_half < 0.5 * p_nom * 0.9);
    }
}
