//! Error type for device-model evaluation and solving.

use np_units::guard::NonFinite;
use np_units::math::SolveError;
use np_units::Volts;
use std::fmt;

/// Error returned by device-model evaluation and calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The gate overdrive `Vdd − Vth` is not positive; the saturation-drive
    /// expressions (Eqs. 2–3) do not apply below threshold.
    NoOverdrive {
        /// Supply voltage requested.
        vdd: Volts,
        /// Device threshold.
        vth: Volts,
    },
    /// A device parameter is unphysical (documented in the message).
    BadParameter(&'static str),
    /// A numeric input was NaN, infinite, or outside its physical domain.
    NonFinite(NonFinite),
    /// A numerical solve inside the model failed.
    Solve(SolveError),
    /// No threshold voltage in the search window can meet the requested
    /// drive-current target at the given supply.
    TargetUnreachable {
        /// The supply voltage used in the solve.
        vdd: Volts,
        /// The unreachable Ion target in µA/µm.
        target_ua_per_um: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::NoOverdrive { vdd, vth } => {
                write!(f, "no gate overdrive: Vdd {vdd} at or below Vth {vth}")
            }
            DeviceError::BadParameter(msg) => write!(f, "unphysical device parameter: {msg}"),
            DeviceError::NonFinite(e) => write!(f, "bad input: {e}"),
            DeviceError::Solve(e) => write!(f, "device solve failed: {e}"),
            DeviceError::TargetUnreachable {
                vdd,
                target_ua_per_um,
            } => write!(
                f,
                "no Vth meets Ion = {target_ua_per_um} µA/µm at Vdd = {vdd}"
            ),
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeviceError::Solve(e) => Some(e),
            DeviceError::NonFinite(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for DeviceError {
    fn from(e: SolveError) -> Self {
        DeviceError::Solve(e)
    }
}

impl From<NonFinite> for DeviceError {
    fn from(e: NonFinite) -> Self {
        DeviceError::NonFinite(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DeviceError::NoOverdrive {
            vdd: Volts(0.2),
            vth: Volts(0.3),
        };
        assert!(format!("{e}").contains("no gate overdrive"));
        assert!(format!("{}", DeviceError::BadParameter("x")).contains("unphysical"));
        let e = DeviceError::TargetUnreachable {
            vdd: Volts(0.6),
            target_ua_per_um: 750.0,
        };
        assert!(format!("{e}").contains("750"));
    }

    #[test]
    fn solve_error_is_source() {
        use std::error::Error;
        let e: DeviceError = SolveError::BadArguments("t").into();
        assert!(e.source().is_some());
    }
}
