//! I–V characterization sweeps.
//!
//! The paper's analysis lives at the `(Vdd, Vth)` operating point, but a
//! device library needs the standard characterization surfaces too:
//! `Id(Vgs)` transfer curves (with the subthreshold region stitched to the
//! strong-inversion Eq. 2/3 drive) and `Id(Vds)` output curves (triode
//! blended into saturation). These are what an engineer plots first to
//! sanity-check a model against silicon.

use crate::error::DeviceError;
use crate::model::Mosfet;
use crate::stack::subthreshold_current;
use np_units::{MicroampsPerMicron, Volts};

/// One point of a characterization sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvPoint {
    /// Swept voltage (Vgs for transfer curves, Vds for output curves).
    pub v: Volts,
    /// Drain current per micron of width.
    pub id: MicroampsPerMicron,
}

/// The transfer curve `Id(Vgs)` at drain bias `vds`: subthreshold
/// exponential below `Vth`, Eq. 2/3 drive above, blended additively (the
/// standard smooth stitch — both terms are always present, each dominating
/// its own region).
///
/// # Errors
///
/// Returns [`DeviceError::BadParameter`] for an empty sweep or
/// non-positive drain bias.
pub fn transfer_curve(
    dev: &Mosfet,
    vds: Volts,
    vgs_sweep: &[Volts],
) -> Result<Vec<IvPoint>, DeviceError> {
    if vgs_sweep.is_empty() {
        return Err(DeviceError::BadParameter("sweep must be non-empty"));
    }
    if !(vds.0 > 0.0) {
        return Err(DeviceError::BadParameter("drain bias must be positive"));
    }
    let vth = dev.vth_at_temp();
    let mut out = Vec::with_capacity(vgs_sweep.len());
    for &vgs in vgs_sweep {
        // The exponential branch saturates at the threshold crossing; the
        // strong-inversion drive takes over above it.
        let sub = subthreshold_current(dev, vgs.min(vth), vds);
        let strong = dev.ion(vgs).map(|i| i.0).unwrap_or(0.0);
        out.push(IvPoint {
            v: vgs,
            id: MicroampsPerMicron(sub + strong),
        });
    }
    Ok(out)
}

/// The output curve `Id(Vds)` at gate bias `vgs`: linear (triode) region
/// `Id = Vds/R_lin` up to the saturation point, clamped at the Eq. 2
/// saturation current (the standard piecewise long-channel blend, with
/// both branches from the same calibrated model).
///
/// # Errors
///
/// Returns [`DeviceError::NoOverdrive`] when `vgs` is below threshold and
/// [`DeviceError::BadParameter`] for an empty sweep.
pub fn output_curve(
    dev: &Mosfet,
    vgs: Volts,
    vds_sweep: &[Volts],
) -> Result<Vec<IvPoint>, DeviceError> {
    if vds_sweep.is_empty() {
        return Err(DeviceError::BadParameter("sweep must be non-empty"));
    }
    let r_lin = dev.linear_resistance_ohm_um(vgs)?; // Ω·µm
    let i_sat = dev.ion(vgs)?; // µA/µm
    let mut out = Vec::with_capacity(vds_sweep.len());
    for &vds in vds_sweep {
        let triode_ua = vds.0 / r_lin * 1e6;
        out.push(IvPoint {
            v: vds,
            id: MicroampsPerMicron(triode_ua.min(i_sat.0)),
        });
    }
    Ok(out)
}

/// The saturation voltage implied by the two output-curve branches: where
/// the triode line meets the saturation plateau, `Vdsat = Ion · R_lin`.
///
/// # Errors
///
/// Same conditions as [`output_curve`].
pub fn vdsat(dev: &Mosfet, vgs: Volts) -> Result<Volts, DeviceError> {
    let r_lin = dev.linear_resistance_ohm_um(vgs)?;
    let i_sat = dev.ion(vgs)?;
    Ok(Volts(i_sat.0 * 1e-6 * r_lin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;
    use np_units::math::linspace;

    fn dev() -> Mosfet {
        Mosfet::for_node(TechNode::N70).unwrap()
    }

    fn volts(lo: f64, hi: f64, n: usize) -> Vec<Volts> {
        linspace(lo, hi, n).into_iter().map(Volts).collect()
    }

    #[test]
    fn transfer_curve_is_monotone() {
        let d = dev();
        let c = transfer_curve(&d, Volts(0.9), &volts(0.0, 0.9, 19)).unwrap();
        for w in c.windows(2) {
            assert!(w[1].id > w[0].id, "Id(Vgs) must be monotone");
        }
    }

    #[test]
    fn transfer_curve_spans_subthreshold_to_drive() {
        let d = dev();
        let c = transfer_curve(&d, Volts(0.9), &volts(0.0, 0.9, 10)).unwrap();
        // At Vgs = 0 we see ~Ioff; at Vgs = Vdd we see ~Ion.
        assert!(
            (c[0].id.0 / d.ioff().0 - 1.0).abs() < 0.05,
            "left end ≈ Ioff"
        );
        let ion = d.ion(Volts(0.9)).unwrap();
        let right = c[c.len() - 1].id.0;
        assert!((right / ion.0 - 1.0).abs() < 0.05, "right end ≈ Ion");
        // Six-plus decades of range across the curve.
        assert!(right / c[0].id.0 > 1e3);
    }

    #[test]
    fn output_curve_has_triode_and_saturation() {
        let d = dev();
        let c = output_curve(&d, Volts(0.9), &volts(0.01, 0.9, 30)).unwrap();
        // Monotone non-decreasing, with a flat tail.
        for w in c.windows(2) {
            assert!(w[1].id >= w[0].id);
        }
        let sat = d.ion(Volts(0.9)).unwrap();
        assert!((c[c.len() - 1].id.0 - sat.0).abs() < 1e-9, "plateau at Ion");
        assert!(c[0].id.0 < sat.0 * 0.5, "triode start well below Ion");
    }

    #[test]
    fn vdsat_is_between_zero_and_overdrive() {
        let d = dev();
        let v = vdsat(&d, Volts(0.9)).unwrap();
        let vov = 0.9 - d.vth.0;
        assert!(v.0 > 0.0 && v.0 < vov * 1.5, "Vdsat {v} vs overdrive {vov}");
    }

    #[test]
    fn below_threshold_output_curve_errors() {
        let d = dev();
        assert!(output_curve(&d, Volts(0.05), &volts(0.0, 0.9, 5)).is_err());
    }

    #[test]
    fn empty_sweeps_rejected() {
        let d = dev();
        assert!(transfer_curve(&d, Volts(0.9), &[]).is_err());
        assert!(output_curve(&d, Volts(0.9), &[]).is_err());
        assert!(transfer_curve(&d, Volts(0.0), &volts(0.0, 0.9, 3)).is_err());
    }
}
