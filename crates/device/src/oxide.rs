//! Electrical gate-oxide modeling (paper Section 3.1, observation 1).
//!
//! The oxide "appears ~0.7 nm thicker than the physical oxide layer"
//! because of (a) the finite inversion-layer thickness (quantization) and
//! (b) poly-gate depletion (GDE). Advanced (metal) gates remove the GDE
//! share but "the quantization of the inversion layer will be unaffected".

use np_units::{FaradsPerCm2, Nanometers};
use std::fmt;

/// Permittivity of SiO₂ in F/cm (3.9 · ε₀).
pub const EPS_OX_F_PER_CM: f64 = 3.9 * 8.854e-14;

/// Inversion-layer (quantum) contribution to the electrical oxide, in nm.
/// Present for every gate-stack technology.
pub const INVERSION_LAYER_NM: f64 = 0.4;

/// Poly-silicon gate-depletion contribution to the electrical oxide, in nm.
/// Removed by metal gates.
pub const GATE_DEPLETION_NM: f64 = 0.3;

/// Gate-stack technology, selecting which electrical-thickness corrections
/// apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GateKind {
    /// Conventional doped-poly gate: inversion layer + gate depletion,
    /// `Tox,e = Tox,phys + 0.7 nm`. The paper's baseline.
    #[default]
    PolySilicon,
    /// Metal gate: gate depletion eliminated, `Tox,e = Tox,phys + 0.4 nm`.
    /// The Table 2 "metal gate" ablation.
    Metal,
    /// Idealized sheet-charge gate: `Tox,e = Tox,phys`. Used only as an
    /// ablation bound — physically unattainable.
    Ideal,
}

impl GateKind {
    /// The electrical thickening this stack adds to the physical oxide.
    pub fn electrical_offset(self) -> Nanometers {
        Nanometers(match self {
            GateKind::PolySilicon => INVERSION_LAYER_NM + GATE_DEPLETION_NM,
            GateKind::Metal => INVERSION_LAYER_NM,
            GateKind::Ideal => 0.0,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::PolySilicon => write!(f, "poly-Si gate"),
            GateKind::Metal => write!(f, "metal gate"),
            GateKind::Ideal => write!(f, "ideal gate"),
        }
    }
}

/// The electrical oxide thickness `Tox,e` seen by the channel.
///
/// # Examples
///
/// ```
/// use np_device::oxide::{electrical_tox, GateKind};
/// use np_units::Nanometers;
///
/// let te = electrical_tox(Nanometers(1.08), GateKind::PolySilicon);
/// assert!((te.0 - 1.78).abs() < 1e-12);
/// ```
pub fn electrical_tox(tox_phys: Nanometers, gate: GateKind) -> Nanometers {
    tox_phys + gate.electrical_offset()
}

/// Electrical gate-oxide capacitance per unit area, `Coxe = ε_ox / Tox,e`.
///
/// # Panics
///
/// Panics if the physical thickness is not positive.
pub fn coxe(tox_phys: Nanometers, gate: GateKind) -> FaradsPerCm2 {
    assert!(tox_phys.0 > 0.0, "oxide thickness must be positive");
    FaradsPerCm2(EPS_OX_F_PER_CM / electrical_tox(tox_phys, gate).as_cm())
}

/// Physical gate-oxide capacitance per unit area (ignores all electrical
/// corrections) — the quantity the paper argues the ITRS *should not* use.
///
/// # Panics
///
/// Panics if the thickness is not positive.
pub fn cox_physical(tox_phys: Nanometers) -> FaradsPerCm2 {
    assert!(tox_phys.0 > 0.0, "oxide thickness must be positive");
    FaradsPerCm2(EPS_OX_F_PER_CM / tox_phys.as_cm())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_gate_adds_0_7nm() {
        assert!((GateKind::PolySilicon.electrical_offset().0 - 0.7).abs() < 1e-12);
        assert!((GateKind::Metal.electrical_offset().0 - 0.4).abs() < 1e-12);
        assert_eq!(GateKind::Ideal.electrical_offset().0, 0.0);
    }

    #[test]
    fn coxe_is_smaller_than_cox() {
        let t = Nanometers(1.0);
        assert!(coxe(t, GateKind::PolySilicon).0 < cox_physical(t).0);
        assert!(coxe(t, GateKind::Metal).0 > coxe(t, GateKind::PolySilicon).0);
        assert!((coxe(t, GateKind::Ideal).0 - cox_physical(t).0).abs() < 1e-12);
    }

    #[test]
    fn coxe_magnitude_is_right() {
        // 2.25 nm physical poly-gate oxide => Toxe 2.95 nm =>
        // Coxe = 3.453e-13 / 2.95e-7 ≈ 1.17 µF/cm².
        let c = coxe(Nanometers(2.25), GateKind::PolySilicon);
        assert!((c.0 - 1.17e-6).abs() < 0.02e-6, "got {c:?}");
    }

    #[test]
    fn relative_gain_of_metal_gate_grows_with_scaling() {
        // The thinner the oxide, the larger the relative Coxe benefit of
        // removing gate depletion — the paper's scaling argument.
        let gain = |t: f64| {
            coxe(Nanometers(t), GateKind::Metal).0 / coxe(Nanometers(t), GateKind::PolySilicon).0
        };
        assert!(gain(0.54) > gain(2.25));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_thickness_panics() {
        let _ = coxe(Nanometers(0.0), GateKind::PolySilicon);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", GateKind::PolySilicon), "poly-Si gate");
        assert_eq!(format!("{}", GateKind::Metal), "metal gate");
        assert_eq!(format!("{}", GateKind::Ideal), "ideal gate");
    }
}
