//! Dual-threshold scaling analysis (the paper's Fig. 2 and Section 3.2.2).
//!
//! Two devices in the same technology, thresholds offset by `ΔVth`:
//!
//! * the **high-Vth** device has its threshold set so `Ion = 750 µA/µm`;
//! * the **low-Vth** device trades exponentially more `Ioff` (exactly
//!   `10^(ΔVth/85 mV)` — ≈15× per 100 mV, node-independent) for extra
//!   drive.
//!
//! Fig. 2 plots two quantities against the technology node: the `Ion` gain
//! a fixed 100 mV reduction buys ([`ion_gain`]), which *grows* with
//! scaling, and the `Ioff` penalty required for a fixed +20 % `Ion`
//! ([`ioff_penalty_for_gain`]), which *shrinks* — together the paper's
//! argument that "the dual-Vth approach to leakage reduction is inherently
//! scalable".

use crate::error::DeviceError;
use crate::model::{Mosfet, SUBTHRESHOLD_SWING_V};
use np_roadmap::TechNode;
use np_units::math::bisect;
use np_units::Volts;

/// A high-Vth / low-Vth device pair in one technology.
#[derive(Debug, Clone, PartialEq)]
pub struct DualVthPair {
    /// The reference device (threshold meets the ITRS `Ion` target).
    pub high: Mosfet,
    /// The fast device (threshold lowered by `delta_vth`).
    pub low: Mosfet,
    /// Threshold offset `Vth,high − Vth,low` (positive).
    pub delta_vth: Volts,
}

impl DualVthPair {
    /// Builds the pair for a roadmap node with the given threshold offset.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors; rejects non-positive offsets.
    pub fn for_node(node: TechNode, delta_vth: Volts) -> Result<Self, DeviceError> {
        if !(delta_vth.0 > 0.0) {
            return Err(DeviceError::BadParameter(
                "threshold offset must be positive",
            ));
        }
        let high = Mosfet::for_node(node)?;
        let low = high.with_vth(high.vth - delta_vth);
        Ok(Self {
            high,
            low,
            delta_vth,
        })
    }

    /// Relative drive-current gain of the low-Vth device,
    /// `Ion,low / Ion,high − 1`.
    ///
    /// # Errors
    ///
    /// Propagates drive-model errors.
    pub fn ion_gain(&self, vdd: Volts) -> Result<f64, DeviceError> {
        let hi = self.high.ion(vdd)?;
        let lo = self.low.ion(vdd)?;
        Ok(lo / hi - 1.0)
    }

    /// Off-current ratio of the pair, `Ioff,low / Ioff,high`. By Eq. 4 this
    /// is exactly `10^(ΔVth/S)` — ≈15 for 100 mV at room temperature.
    pub fn ioff_ratio(&self) -> f64 {
        self.low.ioff() / self.high.ioff()
    }
}

/// The node-independent `Ioff` multiplier of a threshold reduction
/// `delta_vth` (Eq. 4): `10^(ΔVth / 85 mV)`.
///
/// # Examples
///
/// ```
/// let r = np_device::dualvth::ioff_multiplier(np_units::Volts(0.1));
/// assert!((r - 15.0).abs() < 0.1);
/// ```
pub fn ioff_multiplier(delta_vth: Volts) -> f64 {
    10f64.powf(delta_vth.0 / SUBTHRESHOLD_SWING_V)
}

/// Fig. 2 upper curve: percentage `Ion` increase a 100 mV threshold
/// reduction buys at `node` (at the node's nominal supply).
///
/// # Errors
///
/// Propagates calibration and drive-model errors.
pub fn ion_gain(node: TechNode, delta_vth: Volts) -> Result<f64, DeviceError> {
    let pair = DualVthPair::for_node(node, delta_vth)?;
    pair.ion_gain(node.params().vdd)
}

/// Fig. 2 lower curve: the `Ioff` multiplier needed for the low-Vth device
/// to deliver `gain` (e.g. 0.20 = +20 %) more drive than the high-Vth
/// device.
///
/// Solves the threshold offset by bisection, then applies Eq. 4.
///
/// # Errors
///
/// Propagates calibration errors; returns [`DeviceError::TargetUnreachable`]
/// when no offset up to `Vth,high + 0.25 V` achieves the gain.
pub fn ioff_penalty_for_gain(node: TechNode, gain: f64) -> Result<f64, DeviceError> {
    if !(gain > 0.0) {
        return Err(DeviceError::BadParameter("gain must be positive"));
    }
    let high = Mosfet::for_node(node)?;
    let vdd = node.params().vdd;
    let ion_high = high.ion(vdd)?.0;
    let gain_at = |dv: f64| -> f64 {
        high.with_vth(high.vth - Volts(dv))
            .ion(vdd)
            .map(|i| i.0 / ion_high - 1.0)
            .unwrap_or(f64::NAN)
    };
    let dv_max = high.vth.0 + 0.25;
    if gain_at(dv_max) < gain {
        return Err(DeviceError::TargetUnreachable {
            vdd,
            target_ua_per_um: (1.0 + gain) * ion_high,
        });
    }
    let dv = bisect(|dv| gain_at(dv) - gain, 0.0, dv_max, 1e-7)?;
    Ok(ioff_multiplier(Volts(dv)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_is_15x_per_100mv() {
        assert!((ioff_multiplier(Volts(0.1)) - 15.0).abs() < 0.1);
        assert!((ioff_multiplier(Volts(0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_ioff_ratio_matches_closed_form() {
        let pair = DualVthPair::for_node(TechNode::N100, Volts(0.1)).unwrap();
        assert!((pair.ioff_ratio() - ioff_multiplier(Volts(0.1))).abs() < 1e-6);
    }

    #[test]
    fn ion_gain_grows_with_scaling() {
        // Fig. 2: "Ion increases more rapidly with a 100 mV change in Vth
        // for scaled technologies".
        let g180 = ion_gain(TechNode::N180, Volts(0.1)).unwrap();
        let g70 = ion_gain(TechNode::N70, Volts(0.1)).unwrap();
        let g35 = ion_gain(TechNode::N35, Volts(0.1)).unwrap();
        assert!(g180 < g70 && g70 < g35, "{g180} {g70} {g35}");
        assert!(g180 > 0.02 && g180 < 0.20, "180 nm gain {g180}");
        assert!(g35 > 0.15 && g35 < 0.50, "35 nm gain {g35}");
    }

    #[test]
    fn ioff_penalty_shrinks_with_scaling() {
        // Fig. 2: "just a 7X rise in Ioff is required [at 35 nm] ...
        // compared with a factor of 54X today".
        let p180 = ioff_penalty_for_gain(TechNode::N180, 0.20).unwrap();
        let p35 = ioff_penalty_for_gain(TechNode::N35, 0.20).unwrap();
        assert!(p35 < p180 / 3.0, "penalty must collapse: {p180} -> {p35}");
        assert!((3.0..=20.0).contains(&p35), "35 nm penalty {p35}");
        assert!(p180 > 20.0, "180 nm penalty {p180}");
    }

    #[test]
    fn gain_and_penalty_are_consistent() {
        // Applying the solved penalty's ΔVth must reproduce the gain.
        let node = TechNode::N70;
        let penalty = ioff_penalty_for_gain(node, 0.20).unwrap();
        let dv = Volts(SUBTHRESHOLD_SWING_V * penalty.log10());
        let pair = DualVthPair::for_node(node, dv).unwrap();
        let g = pair.ion_gain(node.params().vdd).unwrap();
        assert!((g - 0.20).abs() < 1e-3, "got {g}");
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(DualVthPair::for_node(TechNode::N70, Volts(0.0)).is_err());
        assert!(ioff_penalty_for_gain(TechNode::N70, 0.0).is_err());
        assert!(ioff_penalty_for_gain(TechNode::N70, 50.0).is_err());
    }
}
