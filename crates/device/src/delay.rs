//! `Ion`-based gate-delay model.
//!
//! The Vdd/Vth policy studies of the paper's Figs. 3–4 need only the
//! standard first-order switching-delay metric
//!
//! ```text
//! t_d = k_d · C_load · Vdd / (Ion(Vdd, Vth) · W)
//! ```
//!
//! with a constant load: all of Fig. 3 is *normalized* delay, so `k_d`,
//! `C_load` and `W` cancel. Absolute delays (for FO4 sanity checks and the
//! circuit crate) use `k_d = 0.69`, the step-response constant of a
//! first-order RC stage.

use crate::error::DeviceError;
use crate::model::Mosfet;
use np_units::{Farads, Microns, Seconds, Volts};

/// First-order delay constant `k_d`.
pub const DELAY_K: f64 = 0.69;

/// Fan-out-of-4 effective fan-out including parasitics, used by
/// [`fo4_delay`].
pub const FO4_EFFECTIVE_FANOUT: f64 = 5.0;

/// Switching delay of a device of width `width` driving `c_load` at
/// supply `vdd`.
///
/// # Errors
///
/// Propagates drive-model errors, and rejects non-positive loads or widths
/// via [`DeviceError::BadParameter`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_device::DeviceError> {
/// use np_device::{delay::switching_delay, Mosfet};
/// use np_roadmap::TechNode;
/// use np_units::{Farads, Microns};
///
/// let dev = Mosfet::for_node(TechNode::N100)?;
/// let t = switching_delay(&dev, dev.nominal_vdd(), Farads::from_femto(10.0), Microns(2.0))?;
/// assert!(t.as_pico() > 0.1 && t.as_pico() < 100.0);
/// # Ok(())
/// # }
/// ```
pub fn switching_delay(
    dev: &Mosfet,
    vdd: Volts,
    c_load: Farads,
    width: Microns,
) -> Result<Seconds, DeviceError> {
    if !(c_load.0 > 0.0) {
        return Err(DeviceError::BadParameter(
            "load capacitance must be positive",
        ));
    }
    if !(width.0 > 0.0) {
        return Err(DeviceError::BadParameter("device width must be positive"));
    }
    let ion = dev.ion(vdd)?; // µA/µm
    let drive = ion.total(width); // A
    Ok(Seconds(DELAY_K * c_load.0 * vdd.0 / drive.0))
}

/// Delay of the device normalized to its delay at reference conditions:
/// `[Vdd/Ion(Vdd,Vth)] / [Vdd0/Ion(Vdd0,Vth0)]` (fixed load) — the y-axis
/// of the paper's Fig. 3.
///
/// # Errors
///
/// Propagates drive-model errors from either operating point.
pub fn normalized_delay(
    dev: &Mosfet,
    vdd: Volts,
    vth: Volts,
    vdd_ref: Volts,
    vth_ref: Volts,
) -> Result<f64, DeviceError> {
    let at = dev.with_vth(vth).ion(vdd)?;
    let reference = dev.with_vth(vth_ref).ion(vdd_ref)?;
    Ok((vdd.0 / at.0) / (vdd_ref.0 / reference.0))
}

/// The fan-out-of-4 inverter delay of a calibrated device: the device
/// drives four copies of its own gate capacitance (plus parasitics,
/// folded into [`FO4_EFFECTIVE_FANOUT`]).
///
/// A classic technology metric: ≈ 90 ps at 180 nm, falling towards ≈15 ps
/// at the end of the roadmap in this model.
///
/// # Errors
///
/// Propagates drive-model errors.
pub fn fo4_delay(dev: &Mosfet, vdd: Volts) -> Result<Seconds, DeviceError> {
    // Per-µm width cancels: C ∝ W, I ∝ W.
    let width = Microns(1.0);
    let c_load = Farads(dev.gate_cap_per_um().0 * FO4_EFFECTIVE_FANOUT * width.0);
    switching_delay(dev, vdd, c_load, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_roadmap::TechNode;

    #[test]
    fn delay_scales_inversely_with_width() {
        let dev = Mosfet::for_node(TechNode::N100).unwrap();
        let c = Farads::from_femto(20.0);
        let v = dev.nominal_vdd();
        let t1 = switching_delay(&dev, v, c, Microns(1.0)).unwrap();
        let t2 = switching_delay(&dev, v, c, Microns(2.0)).unwrap();
        assert!((t1.0 / t2.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn delay_scales_with_load() {
        let dev = Mosfet::for_node(TechNode::N100).unwrap();
        let v = dev.nominal_vdd();
        let t1 = switching_delay(&dev, v, Farads::from_femto(10.0), Microns(1.0)).unwrap();
        let t2 = switching_delay(&dev, v, Farads::from_femto(30.0), Microns(1.0)).unwrap();
        assert!((t2.0 / t1.0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fo4_shrinks_along_the_roadmap() {
        let mut prev = f64::INFINITY;
        for node in TechNode::ALL {
            let dev = Mosfet::for_node(node).unwrap();
            let t = fo4_delay(&dev, node.params().vdd).unwrap().as_pico();
            assert!(t < prev, "{node}: FO4 {t} ps did not shrink");
            assert!(t > 0.5 && t < 200.0, "{node}: FO4 {t} ps out of band");
            prev = t;
        }
    }

    #[test]
    fn normalized_delay_is_unity_at_reference() {
        let dev = Mosfet::for_node(TechNode::N35).unwrap();
        let d = normalized_delay(&dev, Volts(0.6), dev.vth, Volts(0.6), dev.vth).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowering_vdd_at_fixed_vth_slows_the_gate() {
        // Fig. 3's "constant Vth" curve rises steeply as Vdd drops.
        let dev = Mosfet::for_node(TechNode::N35).unwrap();
        let d = normalized_delay(&dev, Volts(0.3), dev.vth, Volts(0.6), dev.vth).unwrap();
        assert!(d > 1.5, "got {d}");
    }

    #[test]
    fn lowering_vth_recovers_speed() {
        let dev = Mosfet::for_node(TechNode::N35).unwrap();
        let slow = normalized_delay(&dev, Volts(0.3), dev.vth, Volts(0.6), dev.vth).unwrap();
        let fast =
            normalized_delay(&dev, Volts(0.3), dev.vth - Volts(0.06), Volts(0.6), dev.vth).unwrap();
        assert!(fast < slow);
    }

    #[test]
    fn rejects_bad_load_and_width() {
        let dev = Mosfet::for_node(TechNode::N100).unwrap();
        let v = dev.nominal_vdd();
        assert!(switching_delay(&dev, v, Farads(0.0), Microns(1.0)).is_err());
        assert!(switching_delay(&dev, v, Farads::from_femto(1.0), Microns(0.0)).is_err());
    }
}
