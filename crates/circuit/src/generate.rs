//! Seeded synthetic netlist generation.
//!
//! The paper's multi-Vdd/multi-Vth analyses are driven by two statistics of
//! industrial designs: "~75% of all gates can tolerate Vdd,l" (media
//! processors, Section 2.4) and "over half of all timing paths commonly use
//! less than half the clock cycle" (high-end MPUs, refs \[21, 22\]). Layered
//! random DAGs with a wide spread of path depths reproduce exactly that
//! shape; [`NetlistSpec`] exposes the knobs and the generation is fully
//! deterministic in the seed.

use crate::cell::CellKind;
use crate::netlist::{Gate, GateId, Netlist, NetlistBuilder};
use np_units::Farads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic netlist.
///
/// # Examples
///
/// ```
/// use np_circuit::{generate_netlist, NetlistSpec};
///
/// // The unit-test tier builds through the validating constructor...
/// let small = generate_netlist(&NetlistSpec::small(42));
/// assert_eq!(small.len(), 250);
///
/// // ...while the large tier streams construction in O(n).
/// let spec = NetlistSpec::large(42, 20_000);
/// assert!(spec.streaming);
/// assert_eq!(generate_netlist(&spec).len(), 20_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistSpec {
    /// Number of gates.
    pub gates: usize,
    /// Maximum logic depth (layers).
    pub depth: usize,
    /// RNG seed — equal specs generate equal netlists.
    pub seed: u64,
    /// Fraction of gates additionally marked as timing endpoints
    /// (register inputs), beyond the naturally sink gates.
    pub output_fraction: f64,
    /// Mean wire capacitance per net in femtofarads (exponentially
    /// distributed; interconnect is "a constant factor in the total
    /// capacitance", Section 3.3).
    pub mean_wire_cap_ff: f64,
    /// When true, gate layers are biased deep so most paths run close to
    /// the critical depth — the tight slack profile of a hand-tuned
    /// datapath, versus the default wide spread of random control logic.
    pub balanced_depth: bool,
    /// When true, generation streams through [`NetlistBuilder`] in O(n)
    /// (layer histogram + prefix sums instead of a global sort, one
    /// reused gate buffer, no end-of-build validation pass) — the path
    /// the 10⁶–10⁷-cell tiers use. The RNG stream differs from the
    /// sort-based path, so this is a distinct deterministic family, not
    /// a faster route to the same netlists.
    pub streaming: bool,
}

impl NetlistSpec {
    /// A ~250-gate netlist for unit tests.
    pub fn small(seed: u64) -> Self {
        NetlistSpec {
            gates: 250,
            depth: 14,
            seed,
            output_fraction: 0.1,
            mean_wire_cap_ff: 3.0,
            balanced_depth: false,
            streaming: false,
        }
    }

    /// A ~1200-gate netlist for experiments and benches.
    pub fn medium(seed: u64) -> Self {
        NetlistSpec {
            gates: 1200,
            depth: 22,
            seed,
            output_fraction: 0.08,
            mean_wire_cap_ff: 3.0,
            balanced_depth: false,
            streaming: false,
        }
    }

    /// An industrial-shape tier for `n_cells` in the 10⁵–10⁷ range:
    /// streamed O(n) generation, logic depth growing logarithmically
    /// with size (as placed designs do), and a 5% register fraction.
    pub fn large(seed: u64, n_cells: usize) -> Self {
        // ~44 levels at 10⁶ cells, ~51 at 10⁷ — deep enough that paths
        // spread, shallow enough that layers stay thousands of cells wide.
        let depth = 24 + (n_cells.max(2) as f64).log2().round() as usize;
        NetlistSpec {
            gates: n_cells,
            depth,
            seed,
            output_fraction: 0.05,
            mean_wire_cap_ff: 3.0,
            balanced_depth: false,
            streaming: true,
        }
    }

    /// A datapath-like variant of [`NetlistSpec::small`]: same size, but
    /// depth-balanced so most endpoint paths approach the critical depth.
    pub fn balanced(seed: u64) -> Self {
        NetlistSpec {
            balanced_depth: true,
            ..Self::small(seed)
        }
    }
}

impl Default for NetlistSpec {
    fn default() -> Self {
        Self::small(0)
    }
}

/// Generates a layered random DAG netlist from a spec.
///
/// Gates are assigned uniform random layers `0..depth`; each gate draws its
/// fan-ins from strictly earlier layers with locality bias, so path depths
/// (and therefore slacks) spread widely. Gate kinds follow a typical
/// mapped-logic mix; initial drives are small powers of two.
///
/// # Panics
///
/// Panics if the spec requests zero gates or zero depth.
pub fn generate_netlist(spec: &NetlistSpec) -> Netlist {
    assert!(spec.gates > 0, "spec must request at least one gate");
    assert!(spec.depth > 0, "spec must request at least one layer");
    if spec.streaming {
        return generate_streamed(spec);
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Layer assignment: uniform by default; cubic-biased towards the deep
    // layers for datapath-like (balanced-depth) netlists. Sorted so that
    // indices are topological.
    let mut layers: Vec<usize> = (0..spec.gates)
        .map(|_| {
            if spec.balanced_depth {
                let u: f64 = rng.random();
                let frac = 1.0 - u * u * u; // mass near the deep end
                ((frac * spec.depth as f64) as usize).min(spec.depth - 1)
            } else {
                rng.random_range(0..spec.depth)
            }
        })
        .collect();
    layers.sort_unstable();
    // Index of the first gate of each layer, for fan-in sampling.
    let mut gates = Vec::with_capacity(spec.gates);
    for i in 0..spec.gates {
        let layer = layers[i];
        let kind = pick_kind(&mut rng);
        // Gates in the first occupied layer are primary-input gates.
        let pool_end = layers.partition_point(|&l| l < layer);
        let fanins = if layer == 0 || pool_end == 0 {
            Vec::new()
        } else {
            let wanted = kind.fanin();
            let mut fanins = Vec::with_capacity(wanted);
            for _ in 0..wanted {
                // Locality: quadratic bias towards the end of the pool.
                let u: f64 = rng.random::<f64>();
                let idx = ((1.0 - u * u) * pool_end as f64) as usize;
                let idx = idx.min(pool_end - 1);
                let id = GateId::from_index(idx);
                if !fanins.contains(&id) {
                    fanins.push(id);
                }
            }
            fanins
        };
        let drive = [1.0, 2.0, 4.0, 8.0][rng.random_range(0..4)];
        let wire_ff = -spec.mean_wire_cap_ff * (1.0 - rng.random::<f64>()).ln();
        let is_output = layer == spec.depth - 1 || rng.random::<f64>() < spec.output_fraction;
        let mut gate = Gate::new(kind, fanins)
            .with_drive(drive)
            .with_wire_cap(Farads::from_femto(wire_ff));
        if is_output {
            gate = gate.as_output();
        }
        gates.push(gate);
    }
    match Netlist::new(gates) {
        Ok(nl) => nl,
        // Fanins reference strictly earlier gates, so Kahn's sort cannot
        // find a cycle in a layered construction.
        Err(e) => unreachable!("layered construction is acyclic by design: {e}"),
    }
}

/// O(n) streamed generation for the large tiers.
///
/// Instead of materializing and sorting a per-gate layer vector, the
/// first pass draws a layer *histogram* (n RNG draws, O(depth) memory for
/// the counts) whose prefix sums give each layer's index range directly —
/// gate indices are topological by construction. The second pass emits
/// gates layer by layer through [`NetlistBuilder`], reusing one `Gate`
/// buffer, with the same kind mix, locality-biased fan-in sampling, drive
/// palette, and wire/output distributions as the sort-based path.
fn generate_streamed(spec: &NetlistSpec) -> Netlist {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut counts = vec![0usize; spec.depth];
    for _ in 0..spec.gates {
        let layer = if spec.balanced_depth {
            let u: f64 = rng.random();
            let frac = 1.0 - u * u * u; // mass near the deep end
            ((frac * spec.depth as f64) as usize).min(spec.depth - 1)
        } else {
            rng.random_range(0..spec.depth)
        };
        counts[layer] += 1;
    }
    // Average fan-in under the kind mix is ~1.8; reserve 2 edges/gate.
    let mut builder = NetlistBuilder::with_capacity(spec.gates, spec.gates * 2);
    let mut gate = Gate::new(CellKind::Inverter, Vec::with_capacity(4));
    let mut emitted = 0usize; // gates in strictly earlier layers
    for (layer, &width) in counts.iter().enumerate() {
        let pool_end = emitted;
        for _ in 0..width {
            gate.kind = pick_kind(&mut rng);
            gate.fanins.clear();
            if layer > 0 && pool_end > 0 {
                for _ in 0..gate.kind.fanin() {
                    // Locality: quadratic bias towards the end of the pool.
                    let u: f64 = rng.random::<f64>();
                    let idx = ((1.0 - u * u) * pool_end as f64) as usize;
                    let id = GateId::from_index(idx.min(pool_end - 1));
                    if !gate.fanins.contains(&id) {
                        gate.fanins.push(id);
                    }
                }
            }
            gate.drive = [1.0, 2.0, 4.0, 8.0][rng.random_range(0..4)];
            let wire_ff = -spec.mean_wire_cap_ff * (1.0 - rng.random::<f64>()).ln();
            gate.wire_cap = Farads::from_femto(wire_ff);
            gate.is_output = layer == spec.depth - 1 || rng.random::<f64>() < spec.output_fraction;
            match builder.push(&gate) {
                // Fanins reference strictly earlier indices, so the
                // builder's topological-push invariant always holds.
                Ok(_) => {}
                Err(e) => unreachable!("layered streaming is topological by design: {e}"),
            }
        }
        emitted += width;
    }
    match builder.finish() {
        Ok(nl) => nl,
        Err(e) => unreachable!("streamed generation pushes at least one gate: {e}"),
    }
}

fn pick_kind(rng: &mut StdRng) -> CellKind {
    let r: f64 = rng.random();
    if r < 0.35 {
        CellKind::Inverter
    } else if r < 0.60 {
        CellKind::Nand2
    } else if r < 0.78 {
        CellKind::Nor2
    } else if r < 0.88 {
        CellKind::Nand3
    } else if r < 0.94 {
        CellKind::Nor3
    } else {
        CellKind::Buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta::TimingContext;
    use np_roadmap::TechNode;
    use np_units::stats::fraction_where;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_netlist(&NetlistSpec::small(7));
        let b = generate_netlist(&NetlistSpec::small(7));
        assert_eq!(a, b);
        let c = generate_netlist(&NetlistSpec::small(8));
        assert_ne!(a, c);
    }

    #[test]
    fn requested_gate_count_is_honored() {
        let nl = generate_netlist(&NetlistSpec::small(1));
        assert_eq!(nl.len(), 250);
    }

    #[test]
    fn netlist_has_entries_and_endpoints() {
        let nl = generate_netlist(&NetlistSpec::small(3));
        assert!(!nl.entry_gates().is_empty());
        assert!(!nl.timing_endpoints().is_empty());
    }

    #[test]
    fn fanins_precede_gates() {
        let nl = generate_netlist(&NetlistSpec::small(5));
        for id in nl.ids() {
            for f in nl.gate(id).fanins {
                assert!(f.index() < id.index());
            }
        }
    }

    #[test]
    fn streamed_generation_is_deterministic_and_topological() {
        let spec = NetlistSpec::large(11, 5000);
        let a = generate_netlist(&spec);
        let b = generate_netlist(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5000);
        assert!(!a.entry_gates().is_empty());
        assert!(!a.timing_endpoints().is_empty());
        for id in a.ids() {
            for f in a.gate(id).fanins {
                assert!(f.index() < id.index());
            }
        }
        assert_ne!(a, generate_netlist(&NetlistSpec::large(12, 5000)));
    }

    #[test]
    fn streamed_netlists_are_analyzable() {
        let nl = generate_netlist(&NetlistSpec::large(2, 20_000));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let rep = ctx.analyze(&nl).unwrap();
        assert!(rep.critical_delay().0 > 0.0);
    }

    #[test]
    fn slack_distribution_matches_paper_shape() {
        // Section 2.4 / refs [21,22]: with the clock at ~1.05x the critical
        // delay, over half of all endpoint paths should use less than half
        // the cycle (slack > T/2).
        let nl = generate_netlist(&NetlistSpec::medium(4));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        let ctx = ctx.with_clock(crit * 1.05);
        let rep = ctx.analyze(&nl).unwrap();
        let slacks: Vec<f64> = rep
            .endpoint_slacks(&nl)
            .iter()
            .map(|s| s.0 / rep.clock.0)
            .collect();
        let over_half = fraction_where(&slacks, |s| s > 0.5);
        assert!(
            over_half > 0.5,
            "want >50% of paths with more than half-cycle slack, got {:.0}%",
            over_half * 100.0
        );
        assert!(rep.is_feasible());
    }

    #[test]
    #[should_panic(expected = "at least one gate")]
    fn zero_gates_panics() {
        let mut spec = NetlistSpec::small(0);
        spec.gates = 0;
        let _ = generate_netlist(&spec);
    }
}

#[cfg(test)]
mod balanced_tests {
    use super::*;
    use crate::sta::TimingContext;
    use np_roadmap::TechNode;
    use np_units::stats::fraction_where;

    fn endpoint_slack_fractions(spec: &NetlistSpec) -> f64 {
        let nl = generate_netlist(spec);
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        let ctx = ctx.with_clock(crit * 1.05);
        let rep = ctx.analyze(&nl).unwrap();
        let slacks: Vec<f64> = rep
            .endpoint_slacks(&nl)
            .iter()
            .map(|s| s.0 / rep.clock.0)
            .collect();
        fraction_where(&slacks, |s| s > 0.5)
    }

    #[test]
    fn balanced_netlists_have_far_fewer_slack_rich_paths() {
        // The default profile has the paper's "over half the paths use
        // less than half the cycle"; the balanced profile concentrates
        // paths near critical, like a tuned datapath.
        let loose = endpoint_slack_fractions(&NetlistSpec::small(7));
        let tight = endpoint_slack_fractions(&NetlistSpec::balanced(7));
        assert!(
            tight < loose * 0.7,
            "balanced {tight:.2} vs default {loose:.2}"
        );
    }

    #[test]
    fn balanced_generation_is_deterministic_and_valid() {
        let a = generate_netlist(&NetlistSpec::balanced(3));
        let b = generate_netlist(&NetlistSpec::balanced(3));
        assert_eq!(a, b);
        assert_eq!(a.len(), 250);
        assert!(!a.timing_endpoints().is_empty());
    }
}
