//! Static timing analysis.
//!
//! Arrival times propagate forward through the netlist DAG, required times
//! backward from the clock period at the timing endpoints; slack is their
//! difference. Gate delay uses the logical-effort stage model scaled by the
//! technology time constant `τ` and the device-model delay multiplier for
//! the gate's (supply, threshold) assignment — so CVS and dual-Vth moves
//! are timed with the same compact model that generates the paper's
//! Figs. 2–4.
//!
//! Level conversion (Section 2.4): an edge from a low-supply gate into a
//! high-supply gate passes through a level converter, which adds a fixed
//! delay penalty on that edge (and energy, accounted in
//! [`crate::power`]).

use crate::cell::{CellKind, SupplyClass, VthClass};
use crate::error::CircuitError;
use crate::library::UNIT_INV_WIDTH_PER_DRAWN;
use crate::netlist::{GateId, Netlist};
use np_device::delay::fo4_delay;
use np_device::Mosfet;
use np_roadmap::TechNode;
use np_units::{Farads, Microns, Seconds, Volts};

/// Default ratio `Vdd,l / Vdd,h` — "Vdd,l should be around 0.6 to 0.7
/// times Vdd,h to maximize power savings" (Section 2.4).
pub const DEFAULT_VDD_RATIO: f64 = 0.65;

/// Default threshold offset of the high-Vth implant over the low-Vth one
/// (Section 3.2.2 considers a 100 mV offset).
pub const DEFAULT_VTH_OFFSET: Volts = Volts(0.1);

/// Level-converter delay in units of the technology `τ` (a converting
/// flip-flop/latch stage costs a few FO1 delays).
pub const LEVEL_CONVERTER_TAU_UNITS: f64 = 4.0;

/// Technology- and assignment-aware delay evaluation context.
#[derive(Debug, Clone)]
pub struct TimingContext {
    /// The roadmap node.
    pub node: TechNode,
    /// The high (nominal) supply.
    pub vdd_high: Volts,
    /// The reduced supply used by CVS.
    pub vdd_low: Volts,
    /// The fast (baseline) threshold.
    pub vth_low: Volts,
    /// The slow, low-leakage threshold.
    pub vth_high: Volts,
    /// Clock period timing endpoints are checked against.
    pub clock_period: Seconds,
    /// Technology time constant (FO4/5) at (`vdd_high`, `vth_low`).
    tau: Seconds,
    /// Unit-inverter input capacitance.
    unit_cap: Farads,
    /// Unit-inverter total transistor width.
    unit_width: Microns,
    /// Calibrated device (threshold field = `vth_low`).
    device: Mosfet,
    /// Cached delay multipliers indexed by [supply][vth].
    multipliers: [[f64; 2]; 2],
}

impl TimingContext {
    /// Builds a context for `node` with the default CVS supply ratio and
    /// dual-Vth offset. The clock period defaults to the node's local
    /// clock; tighten or relax it with [`TimingContext::with_clock`].
    ///
    /// # Errors
    ///
    /// Propagates device-calibration failures.
    pub fn for_node(node: TechNode) -> Result<Self, CircuitError> {
        let p = node.params();
        Self::with_supplies(node, p.vdd, p.vdd * DEFAULT_VDD_RATIO, DEFAULT_VTH_OFFSET)
    }

    /// Builds a context with explicit CVS supplies and Vth offset.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadParameter`] for a non-positive or
    /// inverted supply pair, and propagates device errors (e.g. the low
    /// supply dropping below the low threshold).
    pub fn with_supplies(
        node: TechNode,
        vdd_high: Volts,
        vdd_low: Volts,
        vth_offset: Volts,
    ) -> Result<Self, CircuitError> {
        if !(vdd_low.0 > 0.0) || vdd_low > vdd_high {
            return Err(CircuitError::BadParameter(
                "require 0 < vdd_low <= vdd_high",
            ));
        }
        if !(vth_offset.0 > 0.0) {
            return Err(CircuitError::BadParameter("vth offset must be positive"));
        }
        let device = Mosfet::for_node(node)?;
        let vth_low = device.vth;
        let vth_high = vth_low + vth_offset;
        let tau = Seconds(fo4_delay(&device, vdd_high)?.0 / 5.0);
        let unit_width = Microns(UNIT_INV_WIDTH_PER_DRAWN * node.drawn().to_microns().0);
        let unit_cap = Farads(device.gate_cap_per_um().0 * unit_width.0);
        let reference = vdd_high.0 / device.ion(vdd_high)?.0;
        let mut multipliers = [[1.0f64; 2]; 2];
        for (si, &vdd) in [vdd_high, vdd_low].iter().enumerate() {
            for (vi, &vth) in [vth_low, vth_high].iter().enumerate() {
                let ion = device.with_vth(vth).ion(vdd)?;
                multipliers[si][vi] = (vdd.0 / ion.0) / reference;
            }
        }
        Ok(Self {
            node,
            vdd_high,
            vdd_low,
            vth_low,
            vth_high,
            clock_period: node.params().local_clock.period(),
            tau,
            unit_cap,
            unit_width,
            device,
            multipliers,
        })
    }

    /// Returns a copy with a different clock period.
    ///
    /// # Panics
    ///
    /// Panics if the period is not positive.
    pub fn with_clock(mut self, period: Seconds) -> Self {
        assert!(period.0 > 0.0, "clock period must be positive");
        self.clock_period = period;
        self
    }

    /// The technology time constant `τ` (one fifth of the FO4 delay).
    pub fn tau(&self) -> Seconds {
        self.tau
    }

    /// Unit-inverter input capacitance.
    pub fn unit_cap(&self) -> Farads {
        self.unit_cap
    }

    /// Unit-inverter total transistor width.
    pub fn unit_width(&self) -> Microns {
        self.unit_width
    }

    /// The calibrated device backing the delay multipliers.
    pub fn device(&self) -> &Mosfet {
        &self.device
    }

    /// The supply voltage of a supply class.
    pub fn supply_voltage(&self, supply: SupplyClass) -> Volts {
        match supply {
            SupplyClass::High => self.vdd_high,
            SupplyClass::Low => self.vdd_low,
        }
    }

    /// The threshold voltage of a threshold class.
    pub fn threshold_voltage(&self, vth: VthClass) -> Volts {
        match vth {
            VthClass::Low => self.vth_low,
            VthClass::High => self.vth_high,
        }
    }

    /// Delay multiplier of an assignment relative to (high supply,
    /// low Vth).
    pub fn delay_multiplier(&self, supply: SupplyClass, vth: VthClass) -> f64 {
        let si = match supply {
            SupplyClass::High => 0,
            SupplyClass::Low => 1,
        };
        let vi = match vth {
            VthClass::Low => 0,
            VthClass::High => 1,
        };
        self.multipliers[si][vi]
    }

    /// Input capacitance of a gate (one pin).
    pub fn input_cap(&self, kind: CellKind, drive: f64) -> Farads {
        Farads(self.unit_cap.0 * kind.logical_effort() * drive)
    }

    /// Total leaking transistor width of a gate.
    pub fn leak_width(&self, kind: CellKind, drive: f64) -> Microns {
        Microns(self.unit_width.0 * kind.relative_width() * drive)
    }

    /// Capacitive load on a gate's output: fan-out input pins plus wire.
    pub fn load_of(&self, netlist: &Netlist, id: GateId) -> Farads {
        let mut c = netlist.gate(id).wire_cap;
        for &f in netlist.fanouts(id) {
            let fg = netlist.gate(f);
            c += self.input_cap(fg.kind, fg.drive);
        }
        // Endpoints drive a register pin comparable to a 4x inverter.
        if netlist.fanouts(id).is_empty() || netlist.gate(id).is_output {
            c += Farads(self.unit_cap.0 * 4.0);
        }
        c
    }

    /// Propagation delay of one gate under its current assignment.
    pub fn gate_delay(&self, netlist: &Netlist, id: GateId) -> Seconds {
        let g = netlist.gate(id);
        let h = self.load_of(netlist, id).0 / self.input_cap(g.kind, g.drive).0
            * g.kind.logical_effort();
        let units = g.kind.parasitic_delay() + h;
        self.tau * (units * self.delay_multiplier(g.supply, g.vth))
    }

    /// The level-converter delay added on a `Low → High` supply crossing.
    pub fn level_converter_delay(&self) -> Seconds {
        self.tau * LEVEL_CONVERTER_TAU_UNITS
    }

    /// Extra delay on the edge `from → to` (zero unless it crosses from
    /// the low to the high supply domain).
    pub fn edge_penalty(&self, netlist: &Netlist, from: GateId, to: GateId) -> Seconds {
        let (f, t) = (netlist.gate(from), netlist.gate(to));
        if f.supply == SupplyClass::Low && t.supply == SupplyClass::High {
            self.level_converter_delay()
        } else {
            Seconds(0.0)
        }
    }

    /// Runs full STA against the context's clock period.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid netlists; the `Result` is kept for
    /// future load-dependent model failures ([`CircuitError`]).
    pub fn analyze(&self, netlist: &Netlist) -> Result<TimingReport, CircuitError> {
        let _span = np_telemetry::span("circuit.sta.analyze");
        let n = netlist.len();
        np_telemetry::counter("circuit.sta.gates", n as u64);
        // One forward (arrival) and one backward (required) level pass.
        np_telemetry::counter("circuit.sta.level_passes", 2);
        let mut delay = vec![Seconds(0.0); n];
        for id in netlist.ids() {
            delay[id.index()] = self.gate_delay(netlist, id);
        }
        let mut arrival = vec![Seconds(0.0); n];
        for &id in netlist.topological_order() {
            let g = netlist.gate(id);
            let mut at = Seconds(0.0);
            for &f in g.fanins {
                let candidate = arrival[f.index()] + self.edge_penalty(netlist, f, id);
                at = at.max(candidate);
            }
            arrival[id.index()] = at + delay[id.index()];
        }
        let clock = self.clock_period;
        let mut required = vec![Seconds(f64::INFINITY); n];
        for id in netlist.timing_endpoints() {
            required[id.index()] = clock;
        }
        for &id in netlist.topological_order().iter().rev() {
            let req_here = required[id.index()];
            for &f in netlist.gate(id).fanins {
                let budget = req_here - delay[id.index()] - self.edge_penalty(netlist, f, id);
                required[f.index()] = required[f.index()].min(budget);
            }
        }
        let slack: Vec<Seconds> = (0..n).map(|i| required[i] - arrival[i]).collect();
        Ok(TimingReport {
            arrival,
            required,
            slack,
            delay,
            clock,
        })
    }
}

/// The result of one STA run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Arrival time at each gate's output.
    pub arrival: Vec<Seconds>,
    /// Required time at each gate's output.
    pub required: Vec<Seconds>,
    /// Slack (`required − arrival`) at each gate.
    pub slack: Vec<Seconds>,
    /// Propagation delay of each gate at analysis time.
    pub delay: Vec<Seconds>,
    /// The clock period analyzed against.
    pub clock: Seconds,
}

impl TimingReport {
    /// The worst (smallest) slack over all gates.
    pub fn worst_slack(&self) -> Seconds {
        self.slack
            .iter()
            .copied()
            .fold(Seconds(f64::INFINITY), Seconds::min)
    }

    /// True when no gate violates timing.
    pub fn is_feasible(&self) -> bool {
        self.worst_slack().0 >= -1e-15
    }

    /// The latest arrival over all gates (the critical-path delay).
    pub fn critical_delay(&self) -> Seconds {
        self.arrival
            .iter()
            .copied()
            .fold(Seconds(0.0), Seconds::max)
    }

    /// Slack of one gate.
    pub fn slack_of(&self, id: GateId) -> Seconds {
        self.slack[id.index()]
    }

    /// Path slack at each timing endpoint of `netlist`, the distribution
    /// Section 2.4 reasons about.
    pub fn endpoint_slacks(&self, netlist: &Netlist) -> Vec<Seconds> {
        netlist
            .timing_endpoints()
            .into_iter()
            .map(|id| self.slack[id.index()])
            .collect()
    }

    /// The gates of (one) critical path, input to output. Empty when the
    /// netlist has no timing endpoints.
    pub fn critical_path(&self, netlist: &Netlist) -> Vec<GateId> {
        // Walk back from the endpoint with the smallest slack.
        let Some(end) = netlist
            .timing_endpoints()
            .into_iter()
            .min_by(|a, b| self.slack[a.index()].0.total_cmp(&self.slack[b.index()].0))
        else {
            return Vec::new();
        };
        let mut path = vec![end];
        let mut cur = end;
        loop {
            let g = netlist.gate(cur);
            let Some(&worst) = g.fanins.iter().max_by(|a, b| {
                self.arrival[a.index()]
                    .0
                    .total_cmp(&self.arrival[b.index()].0)
            }) else {
                break;
            };
            path.push(worst);
            cur = worst;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Gate;

    fn chain(n: usize) -> Netlist {
        let gates: Vec<Gate> = (0..n)
            .map(|i| {
                let fanins = if i == 0 {
                    vec![]
                } else {
                    vec![GateId::from_index(i - 1)]
                };
                let g = Gate::new(CellKind::Inverter, fanins);
                if i == n - 1 {
                    g.as_output()
                } else {
                    g
                }
            })
            .collect();
        Netlist::new(gates).expect("valid")
    }

    fn ctx() -> TimingContext {
        TimingContext::for_node(TechNode::N100).expect("calibration")
    }

    #[test]
    fn chain_arrival_is_sum_of_delays() {
        let nl = chain(4);
        let ctx = ctx().with_clock(Seconds::from_nano(10.0));
        let rep = ctx.analyze(&nl).unwrap();
        let ids: Vec<GateId> = nl.ids().collect();
        let total: Seconds = ids.iter().map(|&id| rep.delay[id.index()]).sum();
        assert!((rep.critical_delay().0 - total.0).abs() < 1e-18);
        assert!(rep.is_feasible());
    }

    #[test]
    fn slack_decreases_with_tighter_clock() {
        let nl = chain(6);
        let loose = ctx()
            .with_clock(Seconds::from_nano(5.0))
            .analyze(&nl)
            .unwrap();
        let tight = ctx()
            .with_clock(Seconds::from_pico(50.0))
            .analyze(&nl)
            .unwrap();
        assert!(loose.worst_slack() > tight.worst_slack());
    }

    #[test]
    fn infeasible_clock_is_detected() {
        let nl = chain(10);
        let rep = ctx()
            .with_clock(Seconds::from_pico(1.0))
            .analyze(&nl)
            .unwrap();
        assert!(!rep.is_feasible());
    }

    #[test]
    fn low_supply_slows_gates() {
        let c = ctx();
        let m = c.delay_multiplier(SupplyClass::Low, VthClass::Low);
        assert!(m > 1.1, "Vdd,l = 0.65 Vdd,h must cost real delay, got {m}");
        assert_eq!(c.delay_multiplier(SupplyClass::High, VthClass::Low), 1.0);
    }

    #[test]
    fn high_vth_slows_gates() {
        let c = ctx();
        let m = c.delay_multiplier(SupplyClass::High, VthClass::High);
        assert!(m > 1.02, "got {m}");
        let m_both = c.delay_multiplier(SupplyClass::Low, VthClass::High);
        assert!(m_both > m);
    }

    #[test]
    fn cvs_assignment_changes_arrival_and_adds_conversion() {
        let mut nl = chain(3);
        let ids: Vec<GateId> = nl.ids().collect();
        let c = ctx().with_clock(Seconds::from_nano(10.0));
        let before = c.analyze(&nl).unwrap().critical_delay();
        // Put the *first* gate on the low supply: its fan-out is High, so
        // a level-converter penalty appears on the edge, plus the slower
        // gate itself.
        nl.gate_mut(ids[0]).set_supply(SupplyClass::Low);
        let after = c.analyze(&nl).unwrap().critical_delay();
        assert!(after.0 > before.0 + c.level_converter_delay().0 * 0.9);
    }

    #[test]
    fn critical_path_spans_the_chain() {
        let nl = chain(5);
        let rep = ctx()
            .with_clock(Seconds::from_nano(10.0))
            .analyze(&nl)
            .unwrap();
        let path = rep.critical_path(&nl);
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn endpoint_slack_distribution_has_one_entry_per_endpoint() {
        let nl = chain(4);
        let rep = ctx()
            .with_clock(Seconds::from_nano(10.0))
            .analyze(&nl)
            .unwrap();
        assert_eq!(rep.endpoint_slacks(&nl).len(), 1);
    }

    #[test]
    fn bad_supply_pair_rejected() {
        let p = TechNode::N100.params();
        assert!(
            TimingContext::with_supplies(TechNode::N100, p.vdd, Volts(0.0), Volts(0.1)).is_err()
        );
        assert!(
            TimingContext::with_supplies(TechNode::N100, p.vdd, p.vdd * 1.1, Volts(0.1)).is_err()
        );
    }

    #[test]
    fn tau_is_a_fifth_of_fo4() {
        let c = ctx();
        let dev = c.device().clone();
        let fo4 = fo4_delay(&dev, c.vdd_high).unwrap();
        assert!((c.tau().0 - fo4.0 / 5.0).abs() < 1e-18);
    }
}
