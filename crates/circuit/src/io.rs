//! Plain-text netlist interchange.
//!
//! A minimal, line-oriented structural format so optimized designs can be
//! saved, diffed, and reloaded:
//!
//! ```text
//! # nanopower netlist v1
//! gate g0 INV drive=1 wire_ff=2.5
//! gate g1 ND2 drive=2 wire_ff=1 in=g0
//! gate g2 INV drive=4 wire_ff=0 in=g1 supply=low vth=high output
//! ```
//!
//! One `gate` statement per line, ids dense and in definition order
//! (`gN` must be the N-th statement), fan-ins referencing earlier gates
//! only. `supply`/`vth` default to `high`/`low` (the pre-optimization
//! state) and are omitted when at default by the writer.

use crate::cell::{CellKind, SupplyClass, VthClass};
use crate::netlist::{Gate, GateId, Netlist};
use np_units::Farads;
use std::fmt;

/// Error from parsing the netlist text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetlistError {
    /// 1-based line number of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetlistError {}

fn kind_name(kind: CellKind) -> &'static str {
    kind.short_name()
}

fn kind_from_name(s: &str) -> Option<CellKind> {
    CellKind::ALL.into_iter().find(|k| k.short_name() == s)
}

/// Serializes a netlist to the text format.
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::from("# nanopower netlist v1\n");
    for id in netlist.ids() {
        let g = netlist.gate(id);
        out.push_str(&format!(
            "gate g{} {} drive={} wire_ff={}",
            id.index(),
            kind_name(g.kind),
            trim_float(g.drive),
            trim_float(g.wire_cap.as_femto()),
        ));
        if !g.fanins.is_empty() {
            let ins: Vec<String> = g.fanins.iter().map(|f| format!("g{}", f.index())).collect();
            out.push_str(&format!(" in={}", ins.join(",")));
        }
        if g.supply == SupplyClass::Low {
            out.push_str(" supply=low");
        }
        if g.vth == VthClass::High {
            out.push_str(" vth=high");
        }
        if g.is_output {
            out.push_str(" output");
        }
        out.push('\n');
    }
    out
}

fn trim_float(x: f64) -> String {
    if (x.fract()).abs() < 1e-12 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn parse_gate_ref(tok: &str, line: usize, next_id: usize) -> Result<GateId, ParseNetlistError> {
    let idx: usize = tok
        .strip_prefix('g')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| ParseNetlistError {
            line,
            message: format!("bad gate reference `{tok}`"),
        })?;
    if idx >= next_id {
        return Err(ParseNetlistError {
            line,
            message: format!("forward reference to g{idx}"),
        });
    }
    Ok(GateId::from_index(idx))
}

/// Parses the text format back into a validated netlist.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending line for any syntax
/// problem, out-of-order id, forward reference, or invalid value; netlist
/// validation failures (empty file) are reported on line 0.
pub fn parse_netlist(text: &str) -> Result<Netlist, ParseNetlistError> {
    let mut gates: Vec<Gate> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some("gate") => {}
            Some(other) => {
                return Err(ParseNetlistError {
                    line: line_no,
                    message: format!("unknown statement `{other}`"),
                })
            }
            None => continue,
        }
        let next_id = gates.len();
        let id_tok = toks.next().ok_or_else(|| ParseNetlistError {
            line: line_no,
            message: "missing gate id".into(),
        })?;
        let declared = id_tok
            .strip_prefix('g')
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| ParseNetlistError {
                line: line_no,
                message: format!("bad gate id `{id_tok}`"),
            })?;
        if declared != next_id {
            return Err(ParseNetlistError {
                line: line_no,
                message: format!(
                    "gate ids must be dense and ordered: expected g{next_id}, found g{declared}"
                ),
            });
        }
        let kind_tok = toks.next().ok_or_else(|| ParseNetlistError {
            line: line_no,
            message: "missing cell kind".into(),
        })?;
        let kind = kind_from_name(kind_tok).ok_or_else(|| ParseNetlistError {
            line: line_no,
            message: format!("unknown cell kind `{kind_tok}`"),
        })?;
        let mut gate = Gate::new(kind, Vec::new());
        for tok in toks {
            if tok == "output" {
                gate.is_output = true;
            } else if let Some(v) = tok.strip_prefix("drive=") {
                let d: f64 = v.parse().map_err(|_| ParseNetlistError {
                    line: line_no,
                    message: format!("bad drive `{v}`"),
                })?;
                if !(d > 0.0) {
                    return Err(ParseNetlistError {
                        line: line_no,
                        message: "drive must be positive".into(),
                    });
                }
                gate.drive = d;
            } else if let Some(v) = tok.strip_prefix("wire_ff=") {
                let c: f64 = v.parse().map_err(|_| ParseNetlistError {
                    line: line_no,
                    message: format!("bad wire capacitance `{v}`"),
                })?;
                if c < 0.0 {
                    return Err(ParseNetlistError {
                        line: line_no,
                        message: "wire capacitance must be non-negative".into(),
                    });
                }
                gate.wire_cap = Farads::from_femto(c);
            } else if let Some(v) = tok.strip_prefix("in=") {
                for r in v.split(',') {
                    gate.fanins.push(parse_gate_ref(r, line_no, next_id)?);
                }
            } else if let Some(v) = tok.strip_prefix("supply=") {
                gate.supply = match v {
                    "high" => SupplyClass::High,
                    "low" => SupplyClass::Low,
                    other => {
                        return Err(ParseNetlistError {
                            line: line_no,
                            message: format!("unknown supply `{other}`"),
                        })
                    }
                };
            } else if let Some(v) = tok.strip_prefix("vth=") {
                gate.vth = match v {
                    "high" => VthClass::High,
                    "low" => VthClass::Low,
                    other => {
                        return Err(ParseNetlistError {
                            line: line_no,
                            message: format!("unknown vth `{other}`"),
                        })
                    }
                };
            } else {
                return Err(ParseNetlistError {
                    line: line_no,
                    message: format!("unknown attribute `{tok}`"),
                });
            }
        }
        gates.push(gate);
    }
    Netlist::new(gates).map_err(|e| ParseNetlistError {
        line: 0,
        message: format!("netlist validation failed: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_netlist, NetlistSpec};

    #[test]
    fn round_trip_preserves_everything() {
        let mut nl = generate_netlist(&NetlistSpec::small(17));
        // Exercise non-default assignments.
        let ids: Vec<GateId> = nl.ids().collect();
        nl.gate_mut(ids[3]).set_supply(SupplyClass::Low);
        nl.gate_mut(ids[5]).set_vth(VthClass::High);
        let text = write_netlist(&nl);
        let back = parse_netlist(&text).expect("parse");
        assert_eq!(nl.len(), back.len());
        for id in nl.ids() {
            let (a, b) = (nl.gate(id), back.gate(id));
            assert_eq!(a.kind, b.kind, "{id}");
            assert_eq!(a.drive, b.drive, "{id}");
            assert_eq!(a.supply, b.supply, "{id}");
            assert_eq!(a.vth, b.vth, "{id}");
            assert_eq!(a.fanins, b.fanins, "{id}");
            assert_eq!(a.is_output, b.is_output, "{id}");
            // Femtofarad text round-trips the decimal exactly; the
            // farad-scale f64 may differ in the last ulp.
            let (ca, cb) = (a.wire_cap.as_femto(), b.wire_cap.as_femto());
            assert!(
                (ca - cb).abs() <= 1e-9 * ca.abs().max(1.0),
                "{id}: {ca} vs {cb}"
            );
        }
    }

    #[test]
    fn hand_written_netlist_parses() {
        let text = "\
# nanopower netlist v1

gate g0 INV drive=1 wire_ff=2.5
gate g1 ND2 drive=2 wire_ff=1 in=g0
gate g2 INV drive=4 wire_ff=0 in=g1 supply=low vth=high output
";
        let nl = parse_netlist(text).expect("parse");
        assert_eq!(nl.len(), 3);
        let g2 = nl.gate(GateId::from_index(2));
        assert!(g2.is_output);
        assert_eq!(g2.supply, SupplyClass::Low);
        assert_eq!(g2.vth, VthClass::High);
        assert_eq!(g2.fanins, vec![GateId::from_index(1)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("gate g1 INV", "expected g0"),
            ("gate g0 XYZ", "unknown cell kind"),
            ("gate g0 INV drive=0", "drive must be positive"),
            ("gate g0 INV wire_ff=-1", "non-negative"),
            ("gate g0 INV in=g5", "forward reference"),
            ("wire g0", "unknown statement"),
            ("gate g0 INV frobnicate=1", "unknown attribute"),
            ("gate g0 INV supply=medium", "unknown supply"),
        ];
        for (text, needle) in cases {
            let err = parse_netlist(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{text}` -> `{err}` (wanted `{needle}`)"
            );
            assert_eq!(err.line, 1);
        }
    }

    #[test]
    fn self_reference_rejected() {
        let text = "gate g0 INV in=g0";
        let err = parse_netlist(text).unwrap_err();
        assert!(err.to_string().contains("forward reference"));
        let err = parse_netlist("gate g0 INV in=zzz").unwrap_err();
        assert!(err.to_string().contains("bad gate reference"));
    }

    #[test]
    fn empty_file_reports_validation_error() {
        let err = parse_netlist("# nothing\n").unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.to_string().contains("validation"));
    }

    #[test]
    fn all_cell_kinds_round_trip_names() {
        for kind in CellKind::ALL {
            assert_eq!(kind_from_name(kind.short_name()), Some(kind));
        }
    }
}
