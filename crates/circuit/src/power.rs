//! Gate-level and netlist-level power, plus the FO4-inverter power model
//! behind the paper's Fig. 1.
//!
//! Dynamic power of a gate is the energy to swing its output load at the
//! driver's supply, times activity and clock:
//! `P = α · f · C_load · Vdd²`. Leakage is `Ioff(Vth, T) · W_leak · Vdd`.

use crate::cell::SupplyClass;
use crate::error::CircuitError;
use crate::netlist::Netlist;
use crate::sta::TimingContext;
use np_device::Mosfet;
use np_units::{Farads, Hertz, Microns, Volts, Watts};
use std::fmt;

/// Widths of the paper's Fig. 1 inverter, in multiples of the drawn
/// feature size ("Gates are inverters with Wn/L=4, Wp/L=8", footnote 6).
pub const FIG1_WN_PER_L: f64 = 4.0;
/// PMOS width multiple for the Fig. 1 inverter.
pub const FIG1_WP_PER_L: f64 = 8.0;
/// PMOS off-current relative to NMOS per unit width (hole leakage is
/// weaker).
pub const PMOS_IOFF_FRACTION: f64 = 0.5;

/// Dynamic plus leakage power of a netlist or gate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Switching (dynamic) power.
    pub dynamic: Watts,
    /// Subthreshold leakage (static) power.
    pub leakage: Watts,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> Watts {
        self.dynamic + self.leakage
    }

    /// The `Pstatic / Pdynamic` ratio of Fig. 1.
    pub fn static_fraction(&self) -> f64 {
        self.leakage / self.dynamic
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic {:.3} µW + leakage {:.3} µW",
            self.dynamic.as_micro(),
            self.leakage.as_micro()
        )
    }
}

/// Netlist power under the context's supplies/thresholds, at switching
/// activity `activity` and clock `freq`.
///
/// Gates assigned [`SupplyClass::Low`] both switch at the reduced supply
/// (quadratic saving) and leak less (linear × `Ioff(Vdd)` saving); gates
/// assigned [`crate::cell::VthClass::High`] leak `10^(−ΔVth/S)` less. Level converters
/// on Low→High edges are charged their switching energy at the high
/// supply ("8-10% additional level conversion power", Section 2.4).
///
/// # Errors
///
/// Returns [`CircuitError::BadParameter`] for activity outside `(0, 1]` or
/// a non-positive frequency.
pub fn netlist_power(
    netlist: &Netlist,
    ctx: &TimingContext,
    activity: f64,
    freq: Hertz,
) -> Result<PowerReport, CircuitError> {
    if !(activity > 0.0 && activity <= 1.0) {
        return Err(CircuitError::BadParameter("activity must be in (0, 1]"));
    }
    if !(freq.0 > 0.0) {
        return Err(CircuitError::BadParameter("frequency must be positive"));
    }
    let mut dynamic = Watts(0.0);
    let mut leakage = Watts(0.0);
    let dev = ctx.device();
    let converter_cap = Farads(ctx.unit_cap().0 * 3.0);
    for id in netlist.ids() {
        let g = netlist.gate(id);
        let vdd = ctx.supply_voltage(g.supply);
        let c_load = ctx.load_of(netlist, id);
        dynamic += Watts(activity * freq.0 * c_load.0 * vdd.0 * vdd.0);
        let ioff = dev
            .with_vth(ctx.threshold_voltage(g.vth))
            .ioff_at_drain(vdd);
        let w = ctx.leak_width(g.kind, g.drive);
        leakage += ioff.total(w) * vdd;
        // Level converters on Low -> High fan-out edges.
        if g.supply == SupplyClass::Low {
            let converters = netlist
                .fanouts(id)
                .iter()
                .filter(|&&f| netlist.gate(f).supply == SupplyClass::High)
                .count();
            if converters > 0 {
                let e = converter_cap.0 * ctx.vdd_high.0 * ctx.vdd_high.0;
                dynamic += Watts(activity * freq.0 * e * converters as f64);
            }
        }
    }
    Ok(PowerReport { dynamic, leakage })
}

/// Count of level converters currently implied by the supply assignment
/// (one per Low→High fan-out edge).
pub fn level_converter_count(netlist: &Netlist) -> usize {
    netlist
        .ids()
        .filter(|&id| netlist.gate(id).supply == SupplyClass::Low)
        .map(|id| {
            netlist
                .fanouts(id)
                .iter()
                .filter(|&&f| netlist.gate(f).supply == SupplyClass::High)
                .count()
        })
        .sum()
}

/// The Fig. 1 scenario: one inverter (Wn/L = 4, Wp/L = 8) driving a
/// fan-out of 4 plus an average wiring load, at the given supply,
/// frequency, activity and the device's junction temperature.
///
/// Returns the dynamic and static power of the stage; the paper plots
/// `static_fraction()` against activity for 70 nm @ 0.9 V and 50 nm @
/// 0.7 / 0.6 V at 85 °C.
///
/// # Errors
///
/// Returns [`CircuitError::BadParameter`] for activity outside `(0, 1]`, a
/// non-positive frequency or wire load, or a device without a roadmap node
/// (the W/L widths are defined in terms of the drawn feature size).
pub fn fo4_power(
    dev: &Mosfet,
    vdd: Volts,
    freq: Hertz,
    activity: f64,
    wire_cap: Farads,
) -> Result<PowerReport, CircuitError> {
    if !(activity > 0.0 && activity <= 1.0) {
        return Err(CircuitError::BadParameter("activity must be in (0, 1]"));
    }
    if !(freq.0 > 0.0) {
        return Err(CircuitError::BadParameter("frequency must be positive"));
    }
    if wire_cap.0 < 0.0 {
        return Err(CircuitError::BadParameter("wire load must be non-negative"));
    }
    let Some(node) = dev.node else {
        return Err(CircuitError::BadParameter(
            "fo4_power needs a node-calibrated device",
        ));
    };
    let drawn = node.drawn().to_microns();
    let wn = Microns(FIG1_WN_PER_L * drawn.0);
    let wp = Microns(FIG1_WP_PER_L * drawn.0);
    let cin = Farads(dev.gate_cap_per_um().0 * (wn.0 + wp.0));
    let c_total = Farads(4.0 * cin.0 + wire_cap.0);
    let dynamic = Watts(activity * freq.0 * c_total.0 * vdd.0 * vdd.0);
    // State-averaged leakage: half the time the NMOS leaks, half the PMOS.
    let ioff = dev.ioff();
    let leak = 0.5 * (ioff.total(wn) + ioff.total(wp) * PMOS_IOFF_FRACTION);
    Ok(PowerReport {
        dynamic,
        leakage: leak * vdd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::VthClass;
    use crate::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;
    use np_units::Celsius;

    fn setup() -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(9));
        let ctx = TimingContext::for_node(TechNode::N70).unwrap();
        (nl, ctx)
    }

    #[test]
    fn power_is_positive_and_dynamic_dominates_at_high_activity() {
        let (nl, ctx) = setup();
        let p = netlist_power(&nl, &ctx, 0.2, Hertz::from_giga(2.0)).unwrap();
        assert!(p.dynamic.0 > 0.0);
        assert!(p.leakage.0 > 0.0);
        assert!(p.dynamic > p.leakage);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_activity_and_freq() {
        let (nl, ctx) = setup();
        let base = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(1.0)).unwrap();
        let double_a = netlist_power(&nl, &ctx, 0.2, Hertz::from_giga(1.0)).unwrap();
        let double_f = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(2.0)).unwrap();
        assert!((double_a.dynamic.0 / base.dynamic.0 - 2.0).abs() < 1e-9);
        assert!((double_f.dynamic.0 / base.dynamic.0 - 2.0).abs() < 1e-9);
        assert!(
            (double_a.leakage.0 - base.leakage.0).abs() < 1e-15,
            "leakage is activity-free"
        );
    }

    #[test]
    fn low_supply_everywhere_cuts_dynamic_quadratically() {
        let (mut nl, ctx) = setup();
        let before = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(2.0)).unwrap();
        for id in nl.ids().collect::<Vec<_>>() {
            nl.gate_mut(id).set_supply(SupplyClass::Low);
        }
        let after = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(2.0)).unwrap();
        let expect = (ctx.vdd_low / ctx.vdd_high).powi(2);
        let got = after.dynamic / before.dynamic;
        assert!(
            (got - expect).abs() < 0.02,
            "want quadratic scaling {expect:.3}, got {got:.3}"
        );
        assert!(after.leakage < before.leakage);
        assert_eq!(level_converter_count(&nl), 0, "all-low design needs none");
    }

    #[test]
    fn high_vth_everywhere_cuts_leakage_by_eq4_factor() {
        let (mut nl, ctx) = setup();
        let before = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(2.0)).unwrap();
        for id in nl.ids().collect::<Vec<_>>() {
            nl.gate_mut(id).set_vth(VthClass::High);
        }
        let after = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(2.0)).unwrap();
        let expect = np_device::dualvth::ioff_multiplier(ctx.vth_high - ctx.vth_low);
        let got = before.leakage / after.leakage;
        assert!(
            (got / expect - 1.0).abs() < 0.01,
            "want {expect:.1}x, got {got:.1}x"
        );
        assert!((after.dynamic.0 - before.dynamic.0).abs() < 1e-15);
    }

    #[test]
    fn mixed_supply_design_counts_converters() {
        let (mut nl, ctx) = setup();
        // Put every entry gate on the low supply; fan-outs stay high.
        for id in nl.entry_gates() {
            nl.gate_mut(id).set_supply(SupplyClass::Low);
        }
        let n = level_converter_count(&nl);
        assert!(n > 0);
        let p_mixed = netlist_power(&nl, &ctx, 0.1, Hertz::from_giga(2.0)).unwrap();
        assert!(p_mixed.dynamic.0 > 0.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        let (nl, ctx) = setup();
        assert!(netlist_power(&nl, &ctx, 0.0, Hertz::from_giga(1.0)).is_err());
        assert!(netlist_power(&nl, &ctx, 1.5, Hertz::from_giga(1.0)).is_err());
        assert!(netlist_power(&nl, &ctx, 0.1, Hertz(0.0)).is_err());
    }

    #[test]
    fn fo4_static_fraction_falls_with_activity() {
        // The Fig. 1 curves are straight lines of slope -1 in log-log:
        // Pstat/Pdyn ~ 1/activity.
        let dev = Mosfet::for_node(TechNode::N70)
            .unwrap()
            .with_temperature(Celsius(85.0));
        let f = TechNode::N70.params().local_clock;
        let wire = Farads::from_femto(5.0);
        let at = |a: f64| {
            fo4_power(&dev, Volts(0.9), f, a, wire)
                .unwrap()
                .static_fraction()
        };
        let r01 = at(0.01);
        let r10 = at(0.1);
        assert!((r01 / r10 - 10.0).abs() < 1e-6, "slope -1 in log-log");
    }

    #[test]
    fn fo4_50nm_leaks_more_than_70nm() {
        // Fig. 1 ordering: 50 nm @ 0.6 V >> 50 nm @ 0.7 V > 70 nm @ 0.9 V.
        // Wire load scales with the node (same relative "average wire").
        let ratio = |node: TechNode, vdd: f64| {
            let wire = Farads::from_femto(5.0 * node.drawn().0 / 70.0);
            let dev = Mosfet::for_node_with(node, Volts(vdd), np_device::GateKind::PolySilicon)
                .unwrap()
                .with_temperature(Celsius(85.0));
            fo4_power(&dev, Volts(vdd), node.params().local_clock, 0.1, wire)
                .unwrap()
                .static_fraction()
        };
        let r70 = ratio(TechNode::N70, 0.9);
        let r50_07 = ratio(TechNode::N50, 0.7);
        let r50_06 = ratio(TechNode::N50, 0.6);
        assert!(r70 < r50_07, "{r70} vs {r50_07}");
        assert!(r50_07 < r50_06, "{r50_07} vs {r50_06}");
    }

    #[test]
    fn fo4_needs_node_calibrated_device() {
        let mut dev = Mosfet::for_node(TechNode::N70).unwrap();
        dev.node = None;
        assert!(fo4_power(
            &dev,
            Volts(0.9),
            Hertz::from_giga(1.0),
            0.1,
            Farads::from_femto(5.0)
        )
        .is_err());
    }
}

/// Short-circuit power of a switching gate (the third classic CMOS power
/// component, alongside switching and leakage): during an input transition
/// both networks conduct for the fraction of the slew where
/// `Vth,n < Vin < Vdd − |Vth,p|`. The standard Veendrick-style estimate is
///
/// ```text
/// P_sc ≈ α · f · (t_sc / 8) · I_peak · Vdd,    t_sc = slew · (1 − 2·Vth/Vdd)
/// ```
///
/// vanishing as `Vdd` approaches `2·Vth` — which is why the paper's
/// low-Vdd design space (Fig. 3's 0.2–0.3 V points) is essentially
/// short-circuit free, while high-overdrive nodes pay ~10 % extra.
///
/// # Errors
///
/// Returns [`CircuitError::BadParameter`] for activity outside `(0, 1]`,
/// a non-positive frequency, or a non-positive slew.
pub fn short_circuit_power(
    dev: &Mosfet,
    vdd: Volts,
    width: Microns,
    slew: np_units::Seconds,
    activity: f64,
    freq: Hertz,
) -> Result<Watts, CircuitError> {
    if !(activity > 0.0 && activity <= 1.0) {
        return Err(CircuitError::BadParameter("activity must be in (0, 1]"));
    }
    if !(freq.0 > 0.0) {
        return Err(CircuitError::BadParameter("frequency must be positive"));
    }
    if !(slew.0 > 0.0) {
        return Err(CircuitError::BadParameter("slew must be positive"));
    }
    let vth = dev.vth_at_temp().0;
    let conduction = 1.0 - 2.0 * vth / vdd.0;
    if conduction <= 0.0 {
        return Ok(Watts(0.0)); // Vdd <= 2 Vth: no simultaneous conduction
    }
    let i_peak = dev.ion(vdd).map_err(CircuitError::Device)?.total(width);
    let t_sc = slew.0 * conduction;
    Ok(Watts(activity * freq.0 * (t_sc / 8.0) * i_peak.0 * vdd.0))
}

#[cfg(test)]
mod short_circuit_tests {
    use super::*;
    use np_roadmap::TechNode;
    use np_units::Seconds;

    #[test]
    fn vanishes_below_twice_vth() {
        // The paper's low-Vdd operating points are short-circuit free.
        let dev = Mosfet::for_node(TechNode::N35).unwrap();
        let p = short_circuit_power(
            &dev,
            Volts(2.0 * dev.vth.0 * 0.9),
            Microns(1.0),
            Seconds::from_pico(20.0),
            0.1,
            Hertz::from_giga(1.0),
        )
        .unwrap();
        assert_eq!(p, Watts(0.0));
    }

    #[test]
    fn is_a_modest_fraction_of_switching_power() {
        // At nominal conditions short-circuit power is the textbook ~10%
        // adder, not a dominant term.
        let node = TechNode::N100;
        let dev = Mosfet::for_node(node).unwrap();
        let vdd = node.params().vdd;
        let width = Microns(1.0);
        let slew = Seconds::from_pico(30.0);
        let f = Hertz::from_giga(1.0);
        let p_sc = short_circuit_power(&dev, vdd, width, slew, 0.1, f).unwrap();
        let c_load = Farads(dev.gate_cap_per_um().0 * 5.0);
        let p_sw = Watts(0.1 * f.0 * c_load.0 * vdd.0 * vdd.0);
        let fraction = p_sc.0 / p_sw.0;
        assert!((0.01..=0.6).contains(&fraction), "fraction {fraction:.2}");
    }

    #[test]
    fn grows_with_slew_and_overdrive() {
        let node = TechNode::N100;
        let dev = Mosfet::for_node(node).unwrap();
        let vdd = node.params().vdd;
        let f = Hertz::from_giga(1.0);
        let slow =
            short_circuit_power(&dev, vdd, Microns(1.0), Seconds::from_pico(60.0), 0.1, f).unwrap();
        let fast =
            short_circuit_power(&dev, vdd, Microns(1.0), Seconds::from_pico(20.0), 0.1, f).unwrap();
        assert!(slow > fast, "slower edges burn more crowbar current");
        let high_vth = dev.with_vth(dev.vth + Volts(0.15));
        let damped = short_circuit_power(
            &high_vth,
            vdd,
            Microns(1.0),
            Seconds::from_pico(60.0),
            0.1,
            f,
        )
        .unwrap();
        assert!(damped < slow, "higher Vth narrows the conduction window");
    }

    #[test]
    fn bad_inputs_rejected() {
        let dev = Mosfet::for_node(TechNode::N100).unwrap();
        let f = Hertz::from_giga(1.0);
        assert!(short_circuit_power(&dev, Volts(1.2), Microns(1.0), Seconds(0.0), 0.1, f).is_err());
        assert!(short_circuit_power(
            &dev,
            Volts(1.2),
            Microns(1.0),
            Seconds::from_pico(10.0),
            0.0,
            f
        )
        .is_err());
    }
}
