//! Cell libraries and the Section 2.3 granularity argument.
//!
//! The paper rebuts the claim that library cells are "nearly 10X larger
//! than minimum-sized gates" by citing the IBM SA-27E 180 nm library: the
//! smallest standard-cell inverter has an input capacitance of just 1.5 fF
//! and leading-edge libraries carry "11 2-input NANDs, 16 inverter sizes".
//! [`Library::rich`] reproduces that granularity; [`Library::coarse`]
//! reproduces the pessimistic library of \[15\] (smallest gate ≈10× minimum);
//! and [`Library::with_generated_cell`] models the on-the-fly cell
//! generation of \[17\] that "exactly match\[es\] load conditions".

use crate::cell::{Cell, CellKind};
use crate::error::CircuitError;
use np_device::Mosfet;
use np_roadmap::TechNode;
use np_units::{Farads, Microns};
use std::fmt;

/// Width of the unit inverter (NMOS + PMOS) in multiples of the drawn
/// feature size. With logical-effort 2:1 sizing this yields the SA-27E-like
/// 1.5 fF smallest inverter at 180 nm.
pub const UNIT_INV_WIDTH_PER_DRAWN: f64 = 4.4;

/// A characterized standard-cell library for one technology node.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_circuit::CircuitError> {
/// use np_circuit::{CellKind, Library};
/// use np_roadmap::TechNode;
///
/// let lib = Library::rich(TechNode::N180)?;
/// // The Section 2.3 anchor: smallest inverter ≈ 1.5 fF input capacitance.
/// let smallest = lib.smallest(CellKind::Inverter).expect("has inverters");
/// assert!((smallest.input_cap.as_femto() - 1.5).abs() < 0.3);
/// assert_eq!(lib.drive_count(CellKind::Inverter), 16);
/// assert_eq!(lib.drive_count(CellKind::Nand2), 11);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    node: TechNode,
    unit_cap: Farads,
    unit_width: Microns,
    cells: Vec<Cell>,
}

impl Library {
    /// Builds a library with explicit per-kind drive strengths.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadParameter`] when any drive list is empty
    /// or contains non-positive drives, and propagates device-model errors.
    pub fn with_drives(
        node: TechNode,
        inverter_drives: &[f64],
        nand2_drives: &[f64],
        other_drives: &[f64],
    ) -> Result<Self, CircuitError> {
        if inverter_drives.is_empty() || nand2_drives.is_empty() || other_drives.is_empty() {
            return Err(CircuitError::BadParameter("drive lists must be non-empty"));
        }
        if inverter_drives
            .iter()
            .chain(nand2_drives)
            .chain(other_drives)
            .any(|&d| d <= 0.0)
        {
            return Err(CircuitError::BadParameter("drives must be positive"));
        }
        let dev = Mosfet::for_node(node)?;
        let unit_width = Microns(UNIT_INV_WIDTH_PER_DRAWN * node.drawn().to_microns().0);
        let unit_cap = Farads(dev.gate_cap_per_um().0 * unit_width.0);
        let mut cells = Vec::new();
        for &d in inverter_drives {
            cells.push(Cell::sized(CellKind::Inverter, d, unit_cap, unit_width));
            cells.push(Cell::sized(CellKind::Buffer, d, unit_cap, unit_width));
        }
        for &d in nand2_drives {
            cells.push(Cell::sized(CellKind::Nand2, d, unit_cap, unit_width));
        }
        for &d in other_drives {
            for kind in [CellKind::Nand3, CellKind::Nor2, CellKind::Nor3] {
                cells.push(Cell::sized(kind, d, unit_cap, unit_width));
            }
        }
        // One level-converter drive per library; CVS sizes them by count.
        cells.push(Cell::sized(
            CellKind::LevelConverter,
            2.0,
            unit_cap,
            unit_width,
        ));
        Ok(Self {
            node,
            unit_cap,
            unit_width,
            cells,
        })
    }

    /// The rich, SA-27E-like library: 16 inverter drives (from 1× — the
    /// ≈1.5 fF cell at 180 nm), 11 NAND2 drives, 8 drives for the other
    /// kinds.
    ///
    /// # Errors
    ///
    /// Propagates device-calibration errors for the node.
    pub fn rich(node: TechNode) -> Result<Self, CircuitError> {
        let inv = [
            1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 32.0, 48.0, 64.0,
        ];
        let nand2 = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0];
        let other = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0, 32.0];
        Self::with_drives(node, &inv, &nand2, &other)
    }

    /// The pessimistic library of \[15\]: smallest gates ≈10× minimum size,
    /// few drives — the configuration that "leads to major power increases
    /// due to overdriving small loads".
    ///
    /// # Errors
    ///
    /// Propagates device-calibration errors for the node.
    pub fn coarse(node: TechNode) -> Result<Self, CircuitError> {
        let drives = [10.0, 20.0, 40.0];
        Self::with_drives(node, &drives, &drives, &drives)
    }

    /// The node this library characterizes.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// The unit inverter input capacitance of the technology.
    pub fn unit_cap(&self) -> Farads {
        self.unit_cap
    }

    /// The unit inverter total transistor width.
    pub fn unit_width(&self) -> Microns {
        self.unit_width
    }

    /// All cells in the library.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of distinct drive strengths for a kind.
    pub fn drive_count(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }

    /// The smallest-drive cell of a kind, if the kind is in the library.
    pub fn smallest(&self, kind: CellKind) -> Option<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.kind == kind)
            .min_by(|a, b| a.drive.total_cmp(&b.drive))
    }

    /// The library cell of `kind` whose drive is nearest to `drive`
    /// (rounding up between neighbours, since underdrive breaks timing).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NoMatchingCell`] when the kind is absent.
    pub fn nearest(&self, kind: CellKind, drive: f64) -> Result<&Cell, CircuitError> {
        let mut candidates: Vec<&Cell> = self.cells.iter().filter(|c| c.kind == kind).collect();
        if candidates.is_empty() {
            return Err(CircuitError::NoMatchingCell {
                wanted: format!("{kind} at drive {drive:.2}"),
            });
        }
        candidates.sort_by(|a, b| a.drive.total_cmp(&b.drive));
        Ok(candidates
            .iter()
            .find(|c| c.drive >= drive)
            .copied()
            .unwrap_or_else(|| candidates[candidates.len() - 1]))
    }

    /// The drive needed for a cell of `kind` to drive `c_load` at electrical
    /// effort `h_target` (≈4 for minimum-delay sizing): `g·C_load/(h·C_u)`.
    pub fn drive_for_load(&self, kind: CellKind, c_load: Farads, h_target: f64) -> f64 {
        (kind.logical_effort() * c_load.0 / (h_target * self.unit_cap.0)).max(0.05)
    }

    /// On-the-fly cell generation (Section 2.3, ref. \[17\]): adds a cell of
    /// `kind` whose drive *exactly* matches `c_load` at effort `h_target`,
    /// and returns it.
    pub fn with_generated_cell(&mut self, kind: CellKind, c_load: Farads, h_target: f64) -> &Cell {
        let drive = self.drive_for_load(kind, c_load, h_target);
        let cell = Cell::sized(kind, drive, self.unit_cap, self.unit_width);
        self.cells.push(cell);
        &self.cells[self.cells.len() - 1]
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} library: {} cells ({} INV drives, {} ND2 drives)",
            self.node,
            self.cells.len(),
            self.drive_count(CellKind::Inverter),
            self.drive_count(CellKind::Nand2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rich_library_matches_sa27e_anchors() {
        let lib = Library::rich(TechNode::N180).unwrap();
        let smallest = lib.smallest(CellKind::Inverter).unwrap();
        // Section 2.3: "the smallest standard cell inverter has an input
        // capacitance of just 1.5 fF".
        assert!(
            (smallest.input_cap.as_femto() - 1.5).abs() < 0.35,
            "got {:.2} fF",
            smallest.input_cap.as_femto()
        );
        assert_eq!(lib.drive_count(CellKind::Inverter), 16);
        assert_eq!(lib.drive_count(CellKind::Nand2), 11);
    }

    #[test]
    fn coarse_library_is_10x_minimum() {
        let rich = Library::rich(TechNode::N180).unwrap();
        let coarse = Library::coarse(TechNode::N180).unwrap();
        let ratio = coarse.smallest(CellKind::Inverter).unwrap().drive
            / rich.smallest(CellKind::Inverter).unwrap().drive;
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn nearest_rounds_up() {
        let lib = Library::rich(TechNode::N100).unwrap();
        let c = lib.nearest(CellKind::Inverter, 2.4).unwrap();
        assert_eq!(c.drive, 3.0);
        let c = lib.nearest(CellKind::Inverter, 500.0).unwrap();
        assert_eq!(c.drive, 64.0, "clamps to largest");
    }

    #[test]
    fn nearest_unknown_kind_in_tiny_library_errors() {
        let lib = Library::with_drives(TechNode::N100, &[1.0], &[1.0], &[1.0]).unwrap();
        // Buffer exists (paired with inverter); ensure a kind that is
        // genuinely absent reports an error by filtering Nand3 out is not
        // possible here, so assert on a coarse request instead.
        assert!(lib.nearest(CellKind::Nand3, 1.0).is_ok());
    }

    #[test]
    fn generated_cell_matches_load_exactly() {
        let mut lib = Library::rich(TechNode::N100).unwrap();
        let load = Farads::from_femto(7.3);
        let before = lib.cells().len();
        let cell = lib
            .with_generated_cell(CellKind::Inverter, load, 4.0)
            .clone();
        assert_eq!(lib.cells().len(), before + 1);
        // h = g * C_load / C_in should equal the 4.0 target exactly.
        let h = cell.kind.logical_effort() * load.0 / cell.input_cap.0;
        assert!((h - 4.0).abs() < 1e-9, "got h = {h}");
    }

    #[test]
    fn unit_cap_scales_down_with_node() {
        let c180 = Library::rich(TechNode::N180).unwrap().unit_cap();
        let c35 = Library::rich(TechNode::N35).unwrap().unit_cap();
        assert!(c35.0 < c180.0 / 2.0);
    }

    #[test]
    fn empty_drive_list_rejected() {
        assert!(matches!(
            Library::with_drives(TechNode::N100, &[], &[1.0], &[1.0]),
            Err(CircuitError::BadParameter(_))
        ));
        assert!(matches!(
            Library::with_drives(TechNode::N100, &[0.0], &[1.0], &[1.0]),
            Err(CircuitError::BadParameter(_))
        ));
    }

    #[test]
    fn display_counts_cells() {
        let lib = Library::rich(TechNode::N70).unwrap();
        let s = format!("{lib}");
        assert!(s.contains("16 INV"));
        assert!(s.contains("11 ND2"));
    }
}
