//! Standard cells in the logical-effort delay model.
//!
//! A cell is characterized by its function ([`CellKind`], which fixes the
//! logical effort `g` and parasitic delay `p`), a *drive strength* (the
//! multiple of the unit inverter's transistor widths), and the resulting
//! input capacitance. Gate delay is
//!
//! ```text
//! d = τ · m(Vdd, Vth) · (p + g · h),    h = C_load / C_in
//! ```
//!
//! where `τ` is the technology time constant (one-fifth of the FO4 delay)
//! and `m` is the supply/threshold delay multiplier from the device model
//! ([`crate::sta::TimingContext`]).

use np_units::{Farads, Microns};
use std::fmt;

/// Combinational cell functions in the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-input inverter (`g = 1`, `p = 1`).
    Inverter,
    /// Two-stage buffer (`g = 1`, `p = 2`).
    Buffer,
    /// Two-input NAND (`g = 4/3`, `p = 2`).
    Nand2,
    /// Three-input NAND (`g = 5/3`, `p = 3`).
    Nand3,
    /// Two-input NOR (`g = 5/3`, `p = 2`).
    Nor2,
    /// Three-input NOR (`g = 7/3`, `p = 3`).
    Nor3,
    /// Low-to-high supply level converter (Section 2.4); modeled as a
    /// skewed buffer with extra parasitic delay.
    LevelConverter,
}

impl CellKind {
    /// All cell kinds, in library order.
    pub const ALL: [CellKind; 7] = [
        CellKind::Inverter,
        CellKind::Buffer,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::LevelConverter,
    ];

    /// Logical effort `g` of the cell's worst input.
    pub fn logical_effort(self) -> f64 {
        match self {
            CellKind::Inverter => 1.0,
            CellKind::Buffer => 1.0,
            CellKind::Nand2 => 4.0 / 3.0,
            CellKind::Nand3 => 5.0 / 3.0,
            CellKind::Nor2 => 5.0 / 3.0,
            CellKind::Nor3 => 7.0 / 3.0,
            CellKind::LevelConverter => 1.5,
        }
    }

    /// Parasitic delay `p` in units of `τ`.
    pub fn parasitic_delay(self) -> f64 {
        match self {
            CellKind::Inverter => 1.0,
            CellKind::Buffer => 2.0,
            CellKind::Nand2 => 2.0,
            CellKind::Nand3 => 3.0,
            CellKind::Nor2 => 2.0,
            CellKind::Nor3 => 3.0,
            CellKind::LevelConverter => 3.0,
        }
    }

    /// Number of logic inputs.
    pub fn fanin(self) -> usize {
        match self {
            CellKind::Inverter | CellKind::Buffer | CellKind::LevelConverter => 1,
            CellKind::Nand2 | CellKind::Nor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 => 3,
        }
    }

    /// Total transistor width of a drive-1 instance, as a multiple of the
    /// unit inverter's total width (NMOS + PMOS, logical-effort sizing).
    pub fn relative_width(self) -> f64 {
        // Input cap scales with g per input; total width ~ g * fanin,
        // buffers/converters carry their output stage too.
        match self {
            CellKind::Inverter => 1.0,
            CellKind::Buffer => 2.5,
            CellKind::Nand2 => 2.0 * 4.0 / 3.0,
            CellKind::Nand3 => 3.0 * 5.0 / 3.0,
            CellKind::Nor2 => 2.0 * 5.0 / 3.0,
            CellKind::Nor3 => 3.0 * 7.0 / 3.0,
            CellKind::LevelConverter => 3.0,
        }
    }

    /// Short library name ("INV", "ND2", …).
    pub fn short_name(self) -> &'static str {
        match self {
            CellKind::Inverter => "INV",
            CellKind::Buffer => "BUF",
            CellKind::Nand2 => "ND2",
            CellKind::Nand3 => "ND3",
            CellKind::Nor2 => "NR2",
            CellKind::Nor3 => "NR3",
            CellKind::LevelConverter => "LVL",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Which on-chip supply a gate runs from (Section 2.4 clustered voltage
/// scaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SupplyClass {
    /// The full supply `Vdd,h` — timing-critical gates.
    #[default]
    High,
    /// The reduced supply `Vdd,l ≈ 0.6–0.7 × Vdd,h` — gates with slack.
    Low,
}

/// Which threshold-voltage implant a gate uses (Section 3.2.2 dual-Vth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VthClass {
    /// Fast, leaky low-Vth devices — the all-low-Vth baseline.
    #[default]
    Low,
    /// Slow, low-leakage high-Vth devices for gates with slack.
    High,
}

/// A characterized library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Library name, e.g. `INVX4`.
    pub name: String,
    /// The cell's function.
    pub kind: CellKind,
    /// Drive strength as a multiple of the unit inverter.
    pub drive: f64,
    /// Input capacitance of one input pin.
    pub input_cap: Farads,
    /// Total leaking transistor width (for `Ioff`-based leakage).
    pub leak_width: Microns,
}

impl Cell {
    /// Builds a cell of `kind` at `drive` in a technology whose unit
    /// inverter has input capacitance `unit_cap` and total width
    /// `unit_width`.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not positive.
    pub fn sized(kind: CellKind, drive: f64, unit_cap: Farads, unit_width: Microns) -> Self {
        assert!(drive > 0.0, "drive strength must be positive");
        let name = if (drive.fract()).abs() < 1e-9 {
            format!("{}X{}", kind.short_name(), drive as u64)
        } else {
            format!("{}X{:.2}", kind.short_name(), drive)
        };
        Cell {
            name,
            kind,
            drive,
            input_cap: Farads(unit_cap.0 * kind.logical_effort() * drive),
            leak_width: Microns(unit_width.0 * kind.relative_width() * drive),
        }
    }

    /// Stage delay of this cell in units of `τ`, driving `c_load`:
    /// `p + g·h`.
    ///
    /// # Panics
    ///
    /// Panics if the cell's input capacitance is zero (corrupt cell).
    pub fn stage_delay_units(&self, c_load: Farads) -> f64 {
        assert!(self.input_cap.0 > 0.0, "cell has no input capacitance");
        let h = c_load.0 / self.input_cap.0 * self.kind.logical_effort();
        self.kind.parasitic_delay() + h
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Cin {:.2} fF)", self.name, self.input_cap.as_femto())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_effort_values_are_textbook() {
        assert_eq!(CellKind::Inverter.logical_effort(), 1.0);
        assert!((CellKind::Nand2.logical_effort() - 4.0 / 3.0).abs() < 1e-12);
        assert!((CellKind::Nor2.logical_effort() - 5.0 / 3.0).abs() < 1e-12);
        assert!(CellKind::Nor3.logical_effort() > CellKind::Nand3.logical_effort());
    }

    #[test]
    fn fanin_matches_kind() {
        assert_eq!(CellKind::Inverter.fanin(), 1);
        assert_eq!(CellKind::Nand2.fanin(), 2);
        assert_eq!(CellKind::Nor3.fanin(), 3);
    }

    #[test]
    fn sized_cell_scales_cap_and_width() {
        let unit_cap = Farads::from_femto(1.5);
        let unit_w = Microns(0.8);
        let x1 = Cell::sized(CellKind::Inverter, 1.0, unit_cap, unit_w);
        let x4 = Cell::sized(CellKind::Inverter, 4.0, unit_cap, unit_w);
        assert!((x4.input_cap.0 / x1.input_cap.0 - 4.0).abs() < 1e-9);
        assert!((x4.leak_width.0 / x1.leak_width.0 - 4.0).abs() < 1e-9);
        assert_eq!(x4.name, "INVX4");
    }

    #[test]
    fn nand_has_higher_input_cap_than_inverter_at_same_drive() {
        let c = Farads::from_femto(1.5);
        let w = Microns(0.8);
        let inv = Cell::sized(CellKind::Inverter, 2.0, c, w);
        let nd = Cell::sized(CellKind::Nand2, 2.0, c, w);
        assert!(nd.input_cap > inv.input_cap);
    }

    #[test]
    fn stage_delay_is_p_plus_gh() {
        let c = Farads::from_femto(1.0);
        let inv = Cell::sized(CellKind::Inverter, 1.0, c, Microns(0.8));
        // FO4: load = 4x own input cap -> h = 4 -> d = 1 + 4 = 5.
        let d = inv.stage_delay_units(Farads(4.0 * inv.input_cap.0));
        assert!((d - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_drive_names() {
        let cell = Cell::sized(
            CellKind::Inverter,
            2.5,
            Farads::from_femto(1.5),
            Microns(0.8),
        );
        assert_eq!(cell.name, "INVX2.50");
    }

    #[test]
    #[should_panic(expected = "drive strength must be positive")]
    fn zero_drive_panics() {
        let _ = Cell::sized(
            CellKind::Inverter,
            0.0,
            Farads::from_femto(1.5),
            Microns(0.8),
        );
    }

    #[test]
    fn display_contains_cap() {
        let cell = Cell::sized(CellKind::Nand2, 1.0, Farads::from_femto(1.5), Microns(0.8));
        let s = format!("{cell}");
        assert!(s.contains("ND2X1"));
        assert!(s.contains("fF"));
    }
}
