//! # np-circuit
//!
//! Gate-level substrate for the optimization studies of *Future Performance
//! Challenges in Nanometer Design* (Sylvester & Kaul, DAC 2001): standard
//! cells and libraries (Section 2.3), netlists, static timing analysis, and
//! gate-level power.
//!
//! The paper's multi-Vdd (CVS), dual-Vth, and re-sizing analyses all act on
//! *netlists with slack distributions*; this crate supplies:
//!
//! * [`cell`] — logical-effort standard cells with drive strengths, supply
//!   class, and threshold class;
//! * [`library`] — cell libraries, including an SA-27E-like rich library
//!   (1.5 fF smallest inverter, 16 inverter sizes, 11 NAND2 drives — the
//!   granularity Section 2.3 describes) and a deliberately coarse library
//!   for the custom-vs-ASIC gap experiment;
//! * [`netlist`] — combinational netlist DAGs with per-gate drive/Vdd/Vth
//!   assignments;
//! * [`generate`] — seeded synthetic netlist generation with realistic path
//!   slack distributions ("over half of all timing paths commonly use less
//!   than half the clock cycle", Section 2.4);
//! * [`sta`] — static timing analysis (arrival/required/slack, critical
//!   path);
//! * [`power`] — dynamic and leakage power at the gate and netlist level,
//!   including the FO4-inverter power model behind the paper's Fig. 1.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), np_circuit::CircuitError> {
//! use np_circuit::generate::{NetlistSpec, generate_netlist};
//! use np_circuit::sta::TimingContext;
//! use np_roadmap::TechNode;
//!
//! let netlist = generate_netlist(&NetlistSpec::small(42));
//! let ctx = TimingContext::for_node(TechNode::N100)?;
//! // Time the design against a clock 10% looser than its critical path.
//! let critical = ctx.analyze(&netlist)?.critical_delay();
//! let timing = ctx.with_clock(critical * 1.1).analyze(&netlist)?;
//! assert!(timing.worst_slack() >= np_units::Seconds(0.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod activity;
pub mod cell;
mod error;
pub mod generate;
pub mod incremental;
pub mod io;
pub mod library;
pub mod netlist;
pub mod power;
pub mod sta;

pub use cell::{Cell, CellKind, SupplyClass, VthClass};
pub use error::CircuitError;
pub use generate::{generate_netlist, NetlistSpec};
pub use incremental::{ConeStats, IncrementalSta};
pub use library::Library;
pub use netlist::{Gate, GateId, GateView, Netlist, NetlistBuilder};
pub use sta::{TimingContext, TimingReport};
