//! Signal-probability and switching-activity propagation.
//!
//! The paper's power numbers hinge on the switching-activity factor α
//! (Fig. 1 sweeps it; CVS and the Fig. 4 analysis fix it at 0.1). Rather
//! than assuming one α everywhere, this module propagates static signal
//! probabilities through the netlist (the classic zero-delay model:
//! independent inputs, `α = 2·p·(1 − p)` per net) so netlist power can be
//! evaluated with per-gate activities.

use crate::cell::CellKind;
use crate::error::CircuitError;
use crate::netlist::{GateId, Netlist};
use crate::power::PowerReport;
use crate::sta::TimingContext;
use np_units::{Hertz, Watts};

/// Static output probability of a gate given its input probabilities
/// (independence assumption). Inputs beyond the gate's fan-in are ignored;
/// missing inputs (primary inputs) are taken at probability 0.5.
pub fn output_probability(kind: CellKind, inputs: &[f64]) -> f64 {
    let p = |i: usize| inputs.get(i).copied().unwrap_or(0.5);
    match kind {
        CellKind::Inverter => 1.0 - p(0),
        CellKind::Buffer | CellKind::LevelConverter => p(0),
        CellKind::Nand2 => 1.0 - p(0) * p(1),
        CellKind::Nand3 => 1.0 - p(0) * p(1) * p(2),
        CellKind::Nor2 => (1.0 - p(0)) * (1.0 - p(1)),
        CellKind::Nor3 => (1.0 - p(0)) * (1.0 - p(1)) * (1.0 - p(2)),
    }
}

/// Per-gate signal probabilities and activities of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// Static probability of each gate's output being 1.
    pub probability: Vec<f64>,
    /// Switching activity `2·p·(1 − p)` of each gate's output.
    pub activity: Vec<f64>,
}

impl ActivityProfile {
    /// Propagates probabilities through the netlist with all primary
    /// inputs at probability `input_probability`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadParameter`] when the input probability
    /// is outside `[0, 1]`.
    pub fn propagate(netlist: &Netlist, input_probability: f64) -> Result<Self, CircuitError> {
        if !(0.0..=1.0).contains(&input_probability) {
            return Err(CircuitError::BadParameter("probability must be in [0, 1]"));
        }
        let mut probability = vec![0.5f64; netlist.len()];
        for &id in netlist.topological_order() {
            let g = netlist.gate(id);
            let inputs: Vec<f64> = (0..g.kind.fanin())
                .map(|i| {
                    g.fanins
                        .get(i)
                        .map(|f| probability[f.index()])
                        .unwrap_or(input_probability)
                })
                .collect();
            probability[id.index()] = output_probability(g.kind, &inputs);
        }
        let activity = probability.iter().map(|&p| 2.0 * p * (1.0 - p)).collect();
        Ok(Self {
            probability,
            activity,
        })
    }

    /// Activity of one gate's output.
    pub fn activity_of(&self, id: GateId) -> f64 {
        self.activity[id.index()]
    }

    /// Mean activity over the netlist.
    pub fn mean_activity(&self) -> f64 {
        self.activity.iter().sum::<f64>() / self.activity.len() as f64
    }
}

/// Netlist power with per-gate propagated activities instead of one
/// uniform α. Leakage is activity-independent and matches
/// [`crate::power::netlist_power`].
///
/// # Errors
///
/// Rejects a non-positive frequency; propagates profile mismatches as
/// [`CircuitError::BadParameter`].
pub fn netlist_power_with_profile(
    netlist: &Netlist,
    ctx: &TimingContext,
    profile: &ActivityProfile,
    freq: Hertz,
) -> Result<PowerReport, CircuitError> {
    if !(freq.0 > 0.0) {
        return Err(CircuitError::BadParameter("frequency must be positive"));
    }
    if profile.activity.len() != netlist.len() {
        return Err(CircuitError::BadParameter("profile does not match netlist"));
    }
    let mut dynamic = Watts(0.0);
    let mut leakage = Watts(0.0);
    let dev = ctx.device();
    for id in netlist.ids() {
        let g = netlist.gate(id);
        let vdd = ctx.supply_voltage(g.supply);
        let c_load = ctx.load_of(netlist, id);
        // Clamp activities away from exactly zero so constant nets still
        // carry a residual (clock feedthrough, glitches).
        let a = profile.activity_of(id).max(1e-4);
        dynamic += Watts(a * freq.0 * c_load.0 * vdd.0 * vdd.0);
        let ioff = dev
            .with_vth(ctx.threshold_voltage(g.vth))
            .ioff_at_drain(vdd);
        leakage += ioff.total(ctx.leak_width(g.kind, g.drive)) * vdd;
    }
    Ok(PowerReport { dynamic, leakage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;

    #[test]
    fn gate_probability_identities() {
        assert_eq!(output_probability(CellKind::Inverter, &[0.3]), 0.7);
        assert_eq!(output_probability(CellKind::Buffer, &[0.3]), 0.3);
        assert!((output_probability(CellKind::Nand2, &[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((output_probability(CellKind::Nor2, &[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((output_probability(CellKind::Nand3, &[0.5, 0.5, 0.5]) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn missing_inputs_default_to_half() {
        // A NAND2 fed by one primary input and one gate behaves as if the
        // primary input sat at 0.5.
        assert!((output_probability(CellKind::Nand2, &[0.5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn activities_are_bounded_by_half() {
        let nl = generate_netlist(&NetlistSpec::small(3));
        let prof = ActivityProfile::propagate(&nl, 0.5).unwrap();
        for &a in &prof.activity {
            assert!((0.0..=0.5).contains(&a));
        }
        assert!(prof.mean_activity() > 0.05);
    }

    #[test]
    fn biased_inputs_reduce_activity() {
        let nl = generate_netlist(&NetlistSpec::small(4));
        let balanced = ActivityProfile::propagate(&nl, 0.5).unwrap();
        let biased = ActivityProfile::propagate(&nl, 0.95).unwrap();
        assert!(biased.mean_activity() < balanced.mean_activity());
    }

    #[test]
    fn profile_power_is_below_uniform_half_activity() {
        let nl = generate_netlist(&NetlistSpec::small(5));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let f = np_units::Hertz::from_giga(1.0);
        let prof = ActivityProfile::propagate(&nl, 0.5).unwrap();
        let with_prof = netlist_power_with_profile(&nl, &ctx, &prof, f).unwrap();
        let uniform = crate::power::netlist_power(&nl, &ctx, 0.5, f).unwrap();
        assert!(with_prof.dynamic < uniform.dynamic);
        assert!((with_prof.leakage.0 / uniform.leakage.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bad_inputs_rejected() {
        let nl = generate_netlist(&NetlistSpec::small(6));
        assert!(ActivityProfile::propagate(&nl, 1.5).is_err());
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let prof = ActivityProfile::propagate(&nl, 0.5).unwrap();
        assert!(netlist_power_with_profile(&nl, &ctx, &prof, np_units::Hertz(0.0)).is_err());
        let other = generate_netlist(&NetlistSpec::medium(6));
        assert!(
            netlist_power_with_profile(&other, &ctx, &prof, np_units::Hertz::from_giga(1.0))
                .is_err()
        );
    }
}
