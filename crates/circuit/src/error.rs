//! Error type for netlist construction and analysis.

use np_device::DeviceError;
use std::fmt;

/// Error returned by netlist construction, timing, and power analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A gate references a fan-in that does not exist.
    UnknownGate {
        /// The dangling index.
        index: usize,
    },
    /// The netlist contains a combinational cycle through the named gate.
    CombinationalLoop {
        /// A gate on the cycle.
        index: usize,
    },
    /// The netlist is empty where an analysis needs gates.
    EmptyNetlist,
    /// A parameter is out of range (documented in the message).
    BadParameter(&'static str),
    /// The underlying device model failed.
    Device(DeviceError),
    /// No cell in the library matches the request.
    NoMatchingCell {
        /// Human-readable description of the request.
        wanted: String,
    },
    /// An incremental analysis was handed a netlist whose topology does
    /// not match the one its cached state was built from.
    StaleTimingView {
        /// Topology digest captured when the analysis was created.
        expected: u64,
        /// Topology digest of the netlist passed to the update call.
        found: u64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownGate { index } => {
                write!(f, "gate fan-in references unknown gate {index}")
            }
            CircuitError::CombinationalLoop { index } => {
                write!(f, "combinational loop through gate {index}")
            }
            CircuitError::EmptyNetlist => write!(f, "netlist has no gates"),
            CircuitError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            CircuitError::Device(e) => write!(f, "device model error: {e}"),
            CircuitError::NoMatchingCell { wanted } => {
                write!(f, "no cell in library matches {wanted}")
            }
            CircuitError::StaleTimingView { expected, found } => {
                write!(
                    f,
                    "netlist topology digest {found:#018x} does not match the \
                     analysis view {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for CircuitError {
    fn from(e: DeviceError) -> Self {
        CircuitError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(format!("{}", CircuitError::UnknownGate { index: 3 }).contains('3'));
        assert!(format!("{}", CircuitError::EmptyNetlist).contains("no gates"));
        assert!(format!(
            "{}",
            CircuitError::NoMatchingCell {
                wanted: "INVX99".into()
            }
        )
        .contains("INVX99"));
    }

    #[test]
    fn device_error_has_source() {
        use std::error::Error;
        let e: CircuitError = DeviceError::BadParameter("x").into();
        assert!(e.source().is_some());
    }
}
