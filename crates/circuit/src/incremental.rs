//! Incremental arrival-time maintenance.
//!
//! The optimization loops (CVS, dual-Vth, sizing) try thousands to
//! millions of single-gate changes, each followed by a feasibility check.
//! Re-running full STA costs `O(gates)` per probe; this engine
//! re-propagates arrivals only through the *affected cone* — the changed
//! gate, the gates whose load it alters (its fan-ins), and whatever
//! downstream actually moves — which is typically a tiny fraction of the
//! design. All scratch state (the rank-ordered worklist heap and its
//! membership bitmap) persists across calls, so a probe on a 10⁷-cell
//! netlist allocates nothing and touches only the cone.
//!
//! The engine maintains exact arrivals (identical to
//! [`TimingContext::analyze`]) plus an incrementally-updated count of
//! endpoint violations against the context clock, making
//! [`IncrementalSta::is_feasible`] O(1).
//!
//! # View validity
//!
//! The tracker captures the netlist's [topology
//! digest](crate::netlist::Netlist::topology_digest) at construction.
//! Every update call re-validates the digest of the netlist it is handed
//! and returns [`CircuitError::StaleTimingView`] on mismatch — assignment
//! mutations (drive/supply/Vth/wire) are fine, but silently swapping in a
//! structurally different netlist is a typed error instead of garbage
//! arrivals.

use crate::error::CircuitError;
use crate::netlist::{GateId, Netlist};
use crate::sta::TimingContext;
use np_units::Seconds;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Arrivals within this absolute tolerance (seconds) are considered
/// unchanged, stopping re-propagation.
const MOVE_EPSILON: f64 = 1e-21;

/// Slack this far below zero (seconds) still counts as meeting the clock —
/// the same tolerance full STA's feasibility check uses.
const FEASIBILITY_SLOP: f64 = 1e-18;

/// Size of the cone a [`IncrementalSta::reevaluate`] call actually
/// touched — the acceptance metric for incrementality (`visited ≪ n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConeStats {
    /// Gates popped from the worklist (arrival recomputed).
    pub visited: usize,
    /// Gates whose arrival actually moved (> 1e-21 s).
    pub moved: usize,
}

/// Exact incremental arrival tracker over one netlist + timing context.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_circuit::CircuitError> {
/// use np_circuit::{generate_netlist, IncrementalSta, NetlistSpec, TimingContext, VthClass};
/// use np_roadmap::TechNode;
///
/// let mut netlist = generate_netlist(&NetlistSpec::small(9));
/// let ctx = TimingContext::for_node(TechNode::N100)?;
/// let clock = ctx.analyze(&netlist)?.critical_delay() * 1.2;
/// let ctx = ctx.with_clock(clock);
///
/// let mut sta = IncrementalSta::new(&ctx, &netlist);
/// let id = netlist.timing_endpoints()[0];
/// netlist.gate_mut(id).set_vth(VthClass::High);
/// let cone = sta.reevaluate(&netlist, id)?;
/// // Only the endpoint's fan-out cone was touched, not the whole design.
/// assert!(cone.visited < netlist.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSta<'a> {
    ctx: &'a TimingContext,
    /// Topology digest of the netlist this state was built from.
    digest: u64,
    /// Topological rank of each gate (for ordered re-propagation).
    rank: Vec<u32>,
    /// Current gate delays.
    delay: Vec<Seconds>,
    /// Current arrival times.
    arrival: Vec<Seconds>,
    /// True for timing endpoints (topology-fixed).
    is_endpoint: Vec<bool>,
    /// Number of endpoints currently violating the context clock —
    /// maintained on every arrival move so feasibility probes are O(1).
    violations: usize,
    /// Worklist membership bitmap. Invariant: all-false between calls
    /// (bits are cleared as entries pop), so no O(n) reset per probe.
    queued: Vec<bool>,
    /// Rank-ordered worklist, persistent so probes allocate nothing.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
}

impl<'a> IncrementalSta<'a> {
    /// Builds the tracker with a full initial propagation.
    pub fn new(ctx: &'a TimingContext, netlist: &Netlist) -> Self {
        let n = netlist.len();
        let mut rank = vec![0u32; n];
        for (r, id) in netlist.topological_order().iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        let mut is_endpoint = vec![false; n];
        for id in netlist.timing_endpoints() {
            is_endpoint[id.index()] = true;
        }
        let mut this = Self {
            ctx,
            digest: netlist.topology_digest(),
            rank,
            delay: vec![Seconds(0.0); n],
            arrival: vec![Seconds(0.0); n],
            is_endpoint,
            violations: 0,
            queued: vec![false; n],
            heap: BinaryHeap::new(),
        };
        for &id in netlist.topological_order() {
            this.delay[id.index()] = ctx.gate_delay(netlist, id);
            this.arrival[id.index()] = this.arrival_from_fanins(netlist, id);
        }
        this.violations = (0..n)
            .filter(|&i| this.is_endpoint[i] && this.violates(this.arrival[i]))
            .count();
        this
    }

    /// Current arrival at a gate's output.
    pub fn arrival_of(&self, id: GateId) -> Seconds {
        self.arrival[id.index()]
    }

    /// Current critical (maximum) arrival. O(n) — intended for reporting,
    /// not inner-loop probing.
    pub fn critical_delay(&self) -> Seconds {
        self.arrival
            .iter()
            .copied()
            .fold(Seconds(0.0), Seconds::max)
    }

    /// True when every timing endpoint meets the context clock. O(1):
    /// the violation count is maintained incrementally.
    pub fn is_feasible(&self) -> bool {
        self.violations == 0
    }

    /// Number of endpoints currently missing the context clock.
    pub fn violation_count(&self) -> usize {
        self.violations
    }

    fn violates(&self, arrival: Seconds) -> bool {
        arrival.0 > self.ctx.clock_period.0 + FEASIBILITY_SLOP
    }

    fn arrival_from_fanins(&self, netlist: &Netlist, id: GateId) -> Seconds {
        let mut at = Seconds(0.0);
        for &f in netlist.fanins(id) {
            let c = self.arrival[f.index()] + self.ctx.edge_penalty(netlist, f, id);
            at = at.max(c);
        }
        at + self.delay[id.index()]
    }

    /// Queues a gate for re-propagation unless already queued.
    fn enqueue(&mut self, id: GateId) {
        let i = id.index();
        if !self.queued[i] {
            self.queued[i] = true;
            self.heap.push(Reverse((self.rank[i], i as u32)));
        }
    }

    /// Verifies the handed netlist is the one this state was built from.
    fn check_view(&self, netlist: &Netlist) -> Result<(), CircuitError> {
        let found = netlist.topology_digest();
        if found != self.digest {
            return Err(CircuitError::StaleTimingView {
                expected: self.digest,
                found,
            });
        }
        Ok(())
    }

    /// Re-propagates after the gate `changed` had its assignment (drive,
    /// supply, Vth, or wire cap) mutated in `netlist`.
    ///
    /// The affected set seeded: the changed gate (its own delay and the
    /// conversion penalty on its in-edges changed), its fan-ins (their
    /// load — and hence delay — changed when the drive changed), and its
    /// fan-outs (supply changes alter conversion penalties on out-edges).
    /// From there arrivals re-propagate in topological-rank order,
    /// stopping wherever an arrival comes out unchanged.
    ///
    /// # Errors
    ///
    /// [`CircuitError::StaleTimingView`] when `netlist`'s topology digest
    /// differs from the one captured at [`IncrementalSta::new`].
    pub fn reevaluate(
        &mut self,
        netlist: &Netlist,
        changed: GateId,
    ) -> Result<ConeStats, CircuitError> {
        self.reevaluate_batch(netlist, &[changed])
    }

    /// Batch form of [`reevaluate`](IncrementalSta::reevaluate) for
    /// multi-gate moves: seeds every changed gate's neighborhood first,
    /// then runs one rank-ordered propagation pass, so overlapping cones
    /// are each visited once instead of once per change.
    ///
    /// # Errors
    ///
    /// [`CircuitError::StaleTimingView`] when `netlist`'s topology digest
    /// differs from the one captured at [`IncrementalSta::new`].
    pub fn reevaluate_batch(
        &mut self,
        netlist: &Netlist,
        changed: &[GateId],
    ) -> Result<ConeStats, CircuitError> {
        self.check_view(netlist)?;
        for &c in changed {
            // Fan-ins: their load changed; their delay must be refreshed.
            for i in 0..netlist.fanins(c).len() {
                let f = netlist.fanins(c)[i];
                self.delay[f.index()] = self.ctx.gate_delay(netlist, f);
                self.enqueue(f);
            }
            self.delay[c.index()] = self.ctx.gate_delay(netlist, c);
            self.enqueue(c);
            for i in 0..netlist.fanouts(c).len() {
                self.enqueue(netlist.fanouts(c)[i]);
            }
        }
        let mut stats = ConeStats::default();
        while let Some(Reverse((_, idx))) = self.heap.pop() {
            let idx = idx as usize;
            let id = GateId::from_index(idx);
            self.queued[idx] = false;
            stats.visited += 1;
            let fresh = self.arrival_from_fanins(netlist, id);
            if (fresh.0 - self.arrival[idx].0).abs() > MOVE_EPSILON {
                if self.is_endpoint[idx] {
                    let was = self.violates(self.arrival[idx]);
                    let now = self.violates(fresh);
                    match (was, now) {
                        (false, true) => self.violations += 1,
                        (true, false) => self.violations -= 1,
                        _ => {}
                    }
                }
                self.arrival[idx] = fresh;
                stats.moved += 1;
                for i in 0..netlist.fanouts(id).len() {
                    self.enqueue(netlist.fanouts(id)[i]);
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{SupplyClass, VthClass};
    use crate::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(96));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * 1.2))
    }

    fn assert_matches_full_sta(inc: &IncrementalSta<'_>, netlist: &Netlist, ctx: &TimingContext) {
        let full = ctx.analyze(netlist).unwrap();
        for id in netlist.ids() {
            let a = inc.arrival_of(id).0;
            let b = full.arrival[id.index()].0;
            assert!((a - b).abs() < 1e-18, "{id}: incremental {a} vs full {b}");
        }
        assert_eq!(inc.is_feasible(), full.is_feasible());
    }

    #[test]
    fn initial_propagation_matches_full_sta() {
        let (nl, ctx) = setup();
        let inc = IncrementalSta::new(&ctx, &nl);
        assert_matches_full_sta(&inc, &nl, &ctx);
        assert!(inc.is_feasible());
        assert_eq!(inc.violation_count(), 0);
    }

    #[test]
    fn random_mutations_stay_exact() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<GateId> = nl.ids().collect();
        for _ in 0..120 {
            let id = ids[rng.random_range(0..ids.len())];
            match rng.random_range(0..4) {
                0 => nl.gate_mut(id).set_supply(SupplyClass::Low),
                1 => nl.gate_mut(id).set_supply(SupplyClass::High),
                2 => nl.gate_mut(id).set_vth(VthClass::High),
                _ => nl
                    .gate_mut(id)
                    .set_drive([0.5, 1.0, 2.0, 4.0][rng.random_range(0..4)]),
            }
            inc.reevaluate(&nl, id).unwrap();
            assert_matches_full_sta(&inc, &nl, &ctx);
        }
    }

    #[test]
    fn feasibility_tracks_full_sta() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        let ids: Vec<GateId> = nl.ids().collect();
        for &id in &ids {
            nl.gate_mut(id).set_supply(SupplyClass::Low);
            inc.reevaluate(&nl, id).unwrap();
            let full = ctx.analyze(&nl).unwrap();
            assert_eq!(inc.is_feasible(), full.is_feasible(), "diverged at {id}");
            // Revert to keep the design mostly feasible.
            if !inc.is_feasible() {
                nl.gate_mut(id).set_supply(SupplyClass::High);
                inc.reevaluate(&nl, id).unwrap();
            }
        }
    }

    #[test]
    fn touched_cone_is_small() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        // A leaf-level change should move far fewer arrivals than the
        // whole netlist.
        let id = nl.timing_endpoints()[0];
        nl.gate_mut(id).set_vth(VthClass::High);
        let cone = inc.reevaluate(&nl, id).unwrap();
        assert!(
            cone.moved <= 3,
            "endpoint change moved {} arrivals",
            cone.moved
        );
        assert!(cone.visited < nl.len() / 4);
    }

    #[test]
    fn critical_delay_matches_full() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        let ids: Vec<GateId> = nl.ids().collect();
        for &id in ids.iter().take(30) {
            nl.gate_mut(id).set_drive(2.0);
            inc.reevaluate(&nl, id).unwrap();
        }
        let full = ctx.analyze(&nl).unwrap();
        assert!((inc.critical_delay().0 - full.critical_delay().0).abs() < 1e-18);
    }

    #[test]
    fn batch_reevaluate_matches_sequential() {
        let (nl, ctx) = setup();
        let ids: Vec<GateId> = nl.ids().collect();
        let moved: Vec<GateId> = ids.iter().copied().step_by(17).collect();

        let mut nl_a = nl.clone();
        let mut inc_a = IncrementalSta::new(&ctx, &nl_a);
        for &id in &moved {
            nl_a.gate_mut(id).set_drive(4.0);
            inc_a.reevaluate(&nl_a, id).unwrap();
        }

        let mut nl_b = nl.clone();
        let mut inc_b = IncrementalSta::new(&ctx, &nl_b);
        for &id in &moved {
            nl_b.gate_mut(id).set_drive(4.0);
        }
        inc_b.reevaluate_batch(&nl_b, &moved).unwrap();

        for id in nl_b.ids() {
            assert_eq!(inc_a.arrival_of(id).0, inc_b.arrival_of(id).0, "{id}");
        }
        assert_matches_full_sta(&inc_b, &nl_b, &ctx);
    }

    #[test]
    fn stale_view_is_a_typed_error() {
        let (nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        // A structurally different netlist (one gate fewer) must be
        // rejected, not silently mixed with cached arrivals.
        let mut spec = NetlistSpec::small(96);
        spec.gates -= 1;
        let other = generate_netlist(&spec);
        let err = inc
            .reevaluate(&other, other.ids().next().unwrap())
            .unwrap_err();
        assert!(matches!(err, CircuitError::StaleTimingView { .. }));
        // The original view still works.
        assert!(inc.reevaluate(&nl, nl.ids().next().unwrap()).is_ok());
    }

    #[test]
    fn worklist_buffers_stay_clean_across_calls() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        for round in 0..5 {
            let id = GateId::from_index(round * 7);
            nl.gate_mut(id).set_drive(2.0);
            inc.reevaluate(&nl, id).unwrap();
            assert!(inc.heap.is_empty());
            assert!(
                inc.queued.iter().all(|&q| !q),
                "round {round} left bits set"
            );
        }
        assert_matches_full_sta(&inc, &nl, &ctx);
    }
}
