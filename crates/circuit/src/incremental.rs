//! Incremental arrival-time maintenance.
//!
//! The optimization loops (CVS, dual-Vth, sizing) try thousands of
//! single-gate changes, each followed by a feasibility check. Re-running
//! full STA costs `O(gates)` per probe; this engine re-propagates arrivals
//! only through the *affected cone* — the changed gate, the gates whose
//! load it alters (its fan-ins), and whatever downstream actually moves —
//! which is typically a small fraction of the design.
//!
//! The engine maintains exact arrivals (identical to
//! [`TimingContext::analyze`]) and the set of endpoint violations against
//! the context clock.

use crate::netlist::{GateId, Netlist};
use crate::sta::TimingContext;
use np_units::Seconds;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact incremental arrival tracker over one netlist + timing context.
#[derive(Debug, Clone)]
pub struct IncrementalSta<'a> {
    ctx: &'a TimingContext,
    /// Topological rank of each gate (for ordered re-propagation).
    rank: Vec<usize>,
    /// Current gate delays.
    delay: Vec<Seconds>,
    /// Current arrival times.
    arrival: Vec<Seconds>,
    /// Indices of the timing endpoints (topology-fixed).
    endpoints: Vec<usize>,
}

impl<'a> IncrementalSta<'a> {
    /// Builds the tracker with a full initial propagation.
    pub fn new(ctx: &'a TimingContext, netlist: &Netlist) -> Self {
        let n = netlist.len();
        let mut rank = vec![0usize; n];
        for (r, id) in netlist.topological_order().iter().enumerate() {
            rank[id.index()] = r;
        }
        let endpoints = netlist
            .timing_endpoints()
            .into_iter()
            .map(|id| id.index())
            .collect();
        let mut this = Self {
            ctx,
            rank,
            delay: vec![Seconds(0.0); n],
            arrival: vec![Seconds(0.0); n],
            endpoints,
        };
        for &id in netlist.topological_order() {
            this.delay[id.index()] = ctx.gate_delay(netlist, id);
            this.arrival[id.index()] = this.arrival_from_fanins(netlist, id);
        }
        this
    }

    /// Current arrival at a gate's output.
    pub fn arrival_of(&self, id: GateId) -> Seconds {
        self.arrival[id.index()]
    }

    /// Current critical (maximum) arrival.
    pub fn critical_delay(&self) -> Seconds {
        self.arrival
            .iter()
            .copied()
            .fold(Seconds(0.0), Seconds::max)
    }

    /// True when every timing endpoint meets the context clock.
    pub fn is_feasible(&self) -> bool {
        let clock = self.ctx.clock_period;
        self.endpoints
            .iter()
            .all(|&i| self.arrival[i].0 <= clock.0 + 1e-18)
    }

    fn arrival_from_fanins(&self, netlist: &Netlist, id: GateId) -> Seconds {
        let g = netlist.gate(id);
        let mut at = Seconds(0.0);
        for &f in &g.fanins {
            let c = self.arrival[f.index()] + self.ctx.edge_penalty(netlist, f, id);
            at = at.max(c);
        }
        at + self.delay[id.index()]
    }

    /// Re-propagates after the gate `changed` had its assignment (drive,
    /// supply, or Vth) mutated in `netlist`. Returns the number of gates
    /// whose arrival actually moved.
    ///
    /// The affected set seeded: the changed gate (its own delay and the
    /// conversion penalty on its in-edges changed) and its fan-ins (their
    /// load — and hence delay — changed when the drive changed).
    pub fn reevaluate(&mut self, netlist: &Netlist, changed: GateId) -> usize {
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        let mut queued = vec![false; netlist.len()];
        let push = |heap: &mut BinaryHeap<Reverse<(usize, usize)>>,
                    queued: &mut Vec<bool>,
                    rank: &Vec<usize>,
                    id: GateId| {
            if !queued[id.index()] {
                queued[id.index()] = true;
                heap.push(Reverse((rank[id.index()], id.index())));
            }
        };
        // Fan-ins: their load changed; their delay must be refreshed.
        for &f in &netlist.gate(changed).fanins.clone() {
            self.delay[f.index()] = self.ctx.gate_delay(netlist, f);
            push(&mut heap, &mut queued, &self.rank, f);
        }
        self.delay[changed.index()] = self.ctx.gate_delay(netlist, changed);
        push(&mut heap, &mut queued, &self.rank, changed);
        // Supply changes alter conversion penalties on out-edges too: the
        // fan-outs' arrivals can move even if their delays do not.
        for &fo in netlist.fanouts(changed) {
            push(&mut heap, &mut queued, &self.rank, fo);
        }
        let mut moved = 0usize;
        while let Some(Reverse((_, idx))) = heap.pop() {
            let id = GateId::from_index(idx);
            queued[idx] = false;
            let fresh = self.arrival_from_fanins(netlist, id);
            if (fresh.0 - self.arrival[idx].0).abs() > 1e-21 {
                self.arrival[idx] = fresh;
                moved += 1;
                for &fo in netlist.fanouts(id) {
                    push(&mut heap, &mut queued, &self.rank, fo);
                }
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{SupplyClass, VthClass};
    use crate::generate::{generate_netlist, NetlistSpec};
    use np_roadmap::TechNode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (Netlist, TimingContext) {
        let nl = generate_netlist(&NetlistSpec::small(96));
        let ctx = TimingContext::for_node(TechNode::N100).unwrap();
        let crit = ctx.analyze(&nl).unwrap().critical_delay();
        (nl, ctx.with_clock(crit * 1.2))
    }

    fn assert_matches_full_sta(inc: &IncrementalSta<'_>, netlist: &Netlist, ctx: &TimingContext) {
        let full = ctx.analyze(netlist).unwrap();
        for id in netlist.ids() {
            let a = inc.arrival_of(id).0;
            let b = full.arrival[id.index()].0;
            assert!((a - b).abs() < 1e-18, "{id}: incremental {a} vs full {b}");
        }
    }

    #[test]
    fn initial_propagation_matches_full_sta() {
        let (nl, ctx) = setup();
        let inc = IncrementalSta::new(&ctx, &nl);
        assert_matches_full_sta(&inc, &nl, &ctx);
        assert!(inc.is_feasible());
    }

    #[test]
    fn random_mutations_stay_exact() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<GateId> = nl.ids().collect();
        for _ in 0..120 {
            let id = ids[rng.random_range(0..ids.len())];
            match rng.random_range(0..4) {
                0 => nl.gate_mut(id).set_supply(SupplyClass::Low),
                1 => nl.gate_mut(id).set_supply(SupplyClass::High),
                2 => nl.gate_mut(id).set_vth(VthClass::High),
                _ => nl
                    .gate_mut(id)
                    .set_drive([0.5, 1.0, 2.0, 4.0][rng.random_range(0..4)]),
            }
            inc.reevaluate(&nl, id);
            assert_matches_full_sta(&inc, &nl, &ctx);
        }
    }

    #[test]
    fn feasibility_tracks_full_sta() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        let ids: Vec<GateId> = nl.ids().collect();
        for &id in &ids {
            nl.gate_mut(id).set_supply(SupplyClass::Low);
            inc.reevaluate(&nl, id);
            let full = ctx.analyze(&nl).unwrap();
            assert_eq!(inc.is_feasible(), full.is_feasible(), "diverged at {id}");
            // Revert to keep the design mostly feasible.
            if !inc.is_feasible() {
                nl.gate_mut(id).set_supply(SupplyClass::High);
                inc.reevaluate(&nl, id);
            }
        }
    }

    #[test]
    fn touched_cone_is_small() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        // A leaf-level change should move far fewer arrivals than the
        // whole netlist.
        let id = nl.timing_endpoints()[0];
        nl.gate_mut(id).set_vth(VthClass::High);
        let moved = inc.reevaluate(&nl, id);
        assert!(moved <= 3, "endpoint change moved {moved} arrivals");
    }

    #[test]
    fn critical_delay_matches_full() {
        let (mut nl, ctx) = setup();
        let mut inc = IncrementalSta::new(&ctx, &nl);
        let ids: Vec<GateId> = nl.ids().collect();
        for &id in ids.iter().take(30) {
            nl.gate_mut(id).set_drive(2.0);
            inc.reevaluate(&nl, id);
        }
        let full = ctx.analyze(&nl).unwrap();
        assert!((inc.critical_delay().0 - full.critical_delay().0).abs() < 1e-18);
    }
}
