//! Combinational netlist DAGs with per-gate drive / supply / threshold
//! assignments — the objects the paper's CVS, dual-Vth, and re-sizing
//! optimizations act on.

use crate::cell::{CellKind, SupplyClass, VthClass};
use crate::error::CircuitError;
use np_units::Farads;
use std::fmt;

/// Identifier of a gate inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(usize);

impl GateId {
    /// Creates an id referring to the gate at `index` in the gate vector
    /// passed to [`Netlist::new`] (which validates that every referenced
    /// index exists).
    pub fn from_index(index: usize) -> GateId {
        GateId(index)
    }

    /// The gate's index in [`Netlist::gates`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// The cell function.
    pub kind: CellKind,
    /// Drive strength (multiple of the unit inverter). Mutated by the
    /// re-sizing optimization.
    pub drive: f64,
    /// Supply assignment. Mutated by CVS.
    pub supply: SupplyClass,
    /// Threshold assignment. Mutated by dual-Vth insertion.
    pub vth: VthClass,
    /// Fan-in gates; inputs not listed here are primary inputs (arrival 0).
    pub fanins: Vec<GateId>,
    /// Interconnect capacitance on the gate's output net.
    pub wire_cap: Farads,
    /// True when the gate drives a register or primary output (its arrival
    /// is checked against the clock period).
    pub is_output: bool,
}

impl Gate {
    /// A drive-1, high-supply, low-Vth gate of `kind` with the given
    /// fan-ins — the state every optimization starts from.
    pub fn new(kind: CellKind, fanins: Vec<GateId>) -> Self {
        Gate {
            kind,
            drive: 1.0,
            supply: SupplyClass::High,
            vth: VthClass::Low,
            fanins,
            wire_cap: Farads(0.0),
            is_output: false,
        }
    }

    /// Builder-style wire-capacitance setter.
    pub fn with_wire_cap(mut self, cap: Farads) -> Self {
        self.wire_cap = cap;
        self
    }

    /// Builder-style drive setter.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not positive.
    pub fn with_drive(mut self, drive: f64) -> Self {
        assert!(drive > 0.0, "drive must be positive");
        self.drive = drive;
        self
    }

    /// Builder-style output marker.
    pub fn as_output(mut self) -> Self {
        self.is_output = true;
        self
    }
}

/// A validated combinational netlist.
///
/// Construction checks that all fan-in references exist and that the graph
/// is acyclic; the topological order and fan-out lists are cached. Gate
/// *assignments* (drive, supply, Vth) are mutable; the *topology* is not.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_circuit::CircuitError> {
/// use np_circuit::{CellKind, Gate, Netlist};
///
/// // inv0 -> nand1 -> inv2 (output)
/// let netlist = Netlist::new(vec![
///     Gate::new(CellKind::Inverter, vec![]),
///     Gate::new(CellKind::Nand2, vec![]),
///     Gate::new(CellKind::Inverter, vec![]).as_output(),
/// ])?;
/// assert_eq!(netlist.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    gates: Vec<Gate>,
    topo: Vec<GateId>,
    fanouts: Vec<Vec<GateId>>,
}

impl Netlist {
    /// Validates and builds a netlist.
    ///
    /// # Errors
    ///
    /// [`CircuitError::EmptyNetlist`] for no gates,
    /// [`CircuitError::UnknownGate`] for dangling fan-ins, and
    /// [`CircuitError::CombinationalLoop`] for cycles.
    pub fn new(gates: Vec<Gate>) -> Result<Self, CircuitError> {
        if gates.is_empty() {
            return Err(CircuitError::EmptyNetlist);
        }
        let n = gates.len();
        for g in &gates {
            for f in &g.fanins {
                if f.0 >= n {
                    return Err(CircuitError::UnknownGate { index: f.0 });
                }
            }
        }
        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (i, g) in gates.iter().enumerate() {
            indeg[i] = g.fanins.len();
            for f in &g.fanins {
                fanouts[f.0].push(GateId(i));
            }
        }
        // Kahn's algorithm.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(GateId(i));
            for f in &fanouts[i] {
                indeg[f.0] -= 1;
                if indeg[f.0] == 0 {
                    queue.push(f.0);
                }
            }
        }
        if topo.len() != n {
            // topo.len() != n guarantees a positive in-degree exists; fall
            // back to 0 rather than panic if that invariant ever breaks.
            let stuck = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(CircuitError::CombinationalLoop { index: stuck });
        }
        Ok(Self {
            gates,
            topo,
            fanouts,
        })
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Always false: construction rejects empty netlists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is from another netlist (out of range).
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// Mutable access to a gate's assignment fields.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate_mut(&mut self, id: GateId) -> GateAssignment<'_> {
        GateAssignment {
            gate: &mut self.gates[id.0],
        }
    }

    /// Gate ids in a valid topological order (fan-ins first).
    pub fn topological_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The gates driven by `id`.
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.0]
    }

    /// Iterator over all gate ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len()).map(GateId)
    }

    /// Gates whose arrival is checked against the clock: gates marked
    /// `is_output` plus any gate with no fan-outs.
    pub fn timing_endpoints(&self) -> Vec<GateId> {
        self.ids()
            .filter(|&id| self.gates[id.0].is_output || self.fanouts[id.0].is_empty())
            .collect()
    }

    /// Gates with no gate fan-ins (driven by primary inputs).
    pub fn entry_gates(&self) -> Vec<GateId> {
        self.ids()
            .filter(|&id| self.gates[id.0].fanins.is_empty())
            .collect()
    }
}

/// Mutable view of a gate restricted to its assignment fields, so the
/// topology caches can never be invalidated.
#[derive(Debug)]
pub struct GateAssignment<'a> {
    gate: &'a mut Gate,
}

impl GateAssignment<'_> {
    /// Sets the drive strength.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not positive.
    pub fn set_drive(&mut self, drive: f64) {
        assert!(drive > 0.0, "drive must be positive");
        self.gate.drive = drive;
    }

    /// Sets the supply class.
    pub fn set_supply(&mut self, supply: SupplyClass) {
        self.gate.supply = supply;
    }

    /// Sets the threshold class.
    pub fn set_vth(&mut self, vth: VthClass) {
        self.gate.vth = vth;
    }

    /// Sets the output-net wire capacitance.
    pub fn set_wire_cap(&mut self, cap: Farads) {
        self.gate.wire_cap = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Netlist {
        let gates: Vec<Gate> = (0..n)
            .map(|i| {
                let fanins = if i == 0 { vec![] } else { vec![GateId(i - 1)] };
                let g = Gate::new(CellKind::Inverter, fanins);
                if i == n - 1 {
                    g.as_output()
                } else {
                    g
                }
            })
            .collect();
        Netlist::new(gates).expect("valid chain")
    }

    #[test]
    fn chain_has_linear_topology() {
        let nl = chain(5);
        assert_eq!(nl.len(), 5);
        assert_eq!(nl.entry_gates(), vec![GateId(0)]);
        assert_eq!(nl.timing_endpoints(), vec![GateId(4)]);
        assert_eq!(nl.fanouts(GateId(2)), &[GateId(3)]);
        // Topological order respects edges.
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (rank, id) in nl.topological_order().iter().enumerate() {
                pos[id.index()] = rank;
            }
            pos
        };
        for i in 1..5 {
            assert!(pos[i - 1] < pos[i]);
        }
    }

    #[test]
    fn empty_netlist_rejected() {
        assert!(matches!(
            Netlist::new(vec![]),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let err = Netlist::new(vec![Gate::new(CellKind::Inverter, vec![GateId(7)])]).unwrap_err();
        assert!(matches!(err, CircuitError::UnknownGate { index: 7 }));
    }

    #[test]
    fn cycle_rejected() {
        let err = Netlist::new(vec![
            Gate::new(CellKind::Inverter, vec![GateId(1)]),
            Gate::new(CellKind::Inverter, vec![GateId(0)]),
        ])
        .unwrap_err();
        assert!(matches!(err, CircuitError::CombinationalLoop { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let err = Netlist::new(vec![Gate::new(CellKind::Inverter, vec![GateId(0)])]).unwrap_err();
        assert!(matches!(err, CircuitError::CombinationalLoop { index: 0 }));
    }

    #[test]
    fn assignment_mutation_preserves_topology() {
        let mut nl = chain(3);
        nl.gate_mut(GateId(1)).set_drive(8.0);
        nl.gate_mut(GateId(1)).set_supply(SupplyClass::Low);
        nl.gate_mut(GateId(1)).set_vth(VthClass::High);
        nl.gate_mut(GateId(1)).set_wire_cap(Farads::from_femto(3.0));
        let g = nl.gate(GateId(1));
        assert_eq!(g.drive, 8.0);
        assert_eq!(g.supply, SupplyClass::Low);
        assert_eq!(g.vth, VthClass::High);
        assert_eq!(nl.fanouts(GateId(0)), &[GateId(1)]);
    }

    #[test]
    #[should_panic(expected = "drive must be positive")]
    fn non_positive_drive_panics() {
        let mut nl = chain(2);
        nl.gate_mut(GateId(0)).set_drive(0.0);
    }

    #[test]
    fn builders_compose() {
        let g = Gate::new(CellKind::Nand2, vec![])
            .with_drive(4.0)
            .with_wire_cap(Farads::from_femto(2.0))
            .as_output();
        assert_eq!(g.drive, 4.0);
        assert!(g.is_output);
        assert!((g.wire_cap.as_femto() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gate_id_display() {
        assert_eq!(format!("{}", GateId(12)), "g12");
    }

    #[test]
    fn diamond_topology_fanouts() {
        //      0
        //    /   \
        //   1     2
        //    \   /
        //      3
        let nl = Netlist::new(vec![
            Gate::new(CellKind::Inverter, vec![]),
            Gate::new(CellKind::Inverter, vec![GateId(0)]),
            Gate::new(CellKind::Inverter, vec![GateId(0)]),
            Gate::new(CellKind::Nand2, vec![GateId(1), GateId(2)]).as_output(),
        ])
        .unwrap();
        assert_eq!(nl.fanouts(GateId(0)).len(), 2);
        assert_eq!(nl.gate(GateId(3)).fanins.len(), 2);
    }
}
