//! Combinational netlist DAGs with per-gate drive / supply / threshold
//! assignments — the objects the paper's CVS, dual-Vth, and re-sizing
//! optimizations act on.
//!
//! # Storage layout
//!
//! [`Netlist`] stores gates in structure-of-arrays (SoA) form: one dense
//! column per assignment field (kind, drive, supply, Vth, wire cap,
//! output flag) plus two compressed-sparse-row (CSR) adjacency tables for
//! fan-ins and fan-outs. There are no per-gate heap allocations, so a
//! 10⁷-cell netlist costs a handful of flat arrays rather than millions
//! of small `Vec`s, and walking a gate's fan-out cone is a contiguous
//! slice scan. [`GateId`] is a `u32` index into those columns — stable
//! for the life of the netlist, since the *topology* is immutable (only
//! assignments can change, through [`Netlist::gate_mut`]).
//!
//! Small netlists are built from [`Gate`] values via [`Netlist::new`]
//! (full validation, any construction order); large streamed netlists
//! use [`NetlistBuilder`], which accepts gates in topological order and
//! builds the CSR tables in O(gates + edges).

use crate::cell::{CellKind, SupplyClass, VthClass};
use crate::error::CircuitError;
use np_units::Farads;
use std::fmt;

/// Identifier of a gate inside one [`Netlist`].
///
/// Internally a `u32`, which halves adjacency-table memory at the
/// 10⁶–10⁷-cell scale; netlists are capped at `u32::MAX − 1` gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates an id referring to the gate at `index` in construction
    /// order (which [`Netlist::new`] / [`NetlistBuilder`] validate).
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit the `u32` id space.
    pub fn from_index(index: usize) -> GateId {
        assert!(
            index < u32::MAX as usize,
            "gate index {index} exceeds the u32 id space"
        );
        GateId(index as u32)
    }

    /// The gate's index in the netlist's storage columns.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One gate instance — the *construction* type consumed by
/// [`Netlist::new`] and [`NetlistBuilder::push`]. Inside a built netlist
/// gates live in SoA columns and are read back as [`GateView`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// The cell function.
    pub kind: CellKind,
    /// Drive strength (multiple of the unit inverter). Mutated by the
    /// re-sizing optimization.
    pub drive: f64,
    /// Supply assignment. Mutated by CVS.
    pub supply: SupplyClass,
    /// Threshold assignment. Mutated by dual-Vth insertion.
    pub vth: VthClass,
    /// Fan-in gates; inputs not listed here are primary inputs (arrival 0).
    pub fanins: Vec<GateId>,
    /// Interconnect capacitance on the gate's output net.
    pub wire_cap: Farads,
    /// True when the gate drives a register or primary output (its arrival
    /// is checked against the clock period).
    pub is_output: bool,
}

impl Gate {
    /// A drive-1, high-supply, low-Vth gate of `kind` with the given
    /// fan-ins — the state every optimization starts from.
    pub fn new(kind: CellKind, fanins: Vec<GateId>) -> Self {
        Gate {
            kind,
            drive: 1.0,
            supply: SupplyClass::High,
            vth: VthClass::Low,
            fanins,
            wire_cap: Farads(0.0),
            is_output: false,
        }
    }

    /// Builder-style wire-capacitance setter.
    pub fn with_wire_cap(mut self, cap: Farads) -> Self {
        self.wire_cap = cap;
        self
    }

    /// Builder-style drive setter.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not positive.
    pub fn with_drive(mut self, drive: f64) -> Self {
        assert!(drive > 0.0, "drive must be positive");
        self.drive = drive;
        self
    }

    /// Builder-style output marker.
    pub fn as_output(mut self) -> Self {
        self.is_output = true;
        self
    }
}

/// Read-only view of one gate inside a [`Netlist`] — scalar assignment
/// fields copied out of the SoA columns plus the gate's fan-in slice
/// from the CSR table.
#[derive(Debug, Clone, Copy)]
pub struct GateView<'a> {
    /// The cell function.
    pub kind: CellKind,
    /// Drive strength (multiple of the unit inverter).
    pub drive: f64,
    /// Supply assignment.
    pub supply: SupplyClass,
    /// Threshold assignment.
    pub vth: VthClass,
    /// Interconnect capacitance on the gate's output net.
    pub wire_cap: Farads,
    /// True when the gate is a timing endpoint by declaration.
    pub is_output: bool,
    /// Fan-in gates (CSR slice; empty for primary-input gates).
    pub fanins: &'a [GateId],
}

/// A validated combinational netlist.
///
/// Construction checks that all fan-in references exist and that the graph
/// is acyclic; the topological order and the CSR fan-in/fan-out tables are
/// cached. Gate *assignments* (drive, supply, Vth) are mutable; the
/// *topology* is not — which is also what makes the cached
/// [`topology digest`](Netlist::topology_digest) a stable fingerprint for
/// incremental-analysis view checks.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_circuit::CircuitError> {
/// use np_circuit::{CellKind, Gate, Netlist};
///
/// // inv0 -> nand1 -> inv2 (output)
/// let netlist = Netlist::new(vec![
///     Gate::new(CellKind::Inverter, vec![]),
///     Gate::new(CellKind::Nand2, vec![]),
///     Gate::new(CellKind::Inverter, vec![]).as_output(),
/// ])?;
/// assert_eq!(netlist.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    kinds: Vec<CellKind>,
    drives: Vec<f64>,
    supplies: Vec<SupplyClass>,
    vths: Vec<VthClass>,
    wire_caps: Vec<Farads>,
    outputs: Vec<bool>,
    /// CSR fan-in adjacency: gate `i`'s fan-ins are
    /// `fanin_edges[fanin_offsets[i]..fanin_offsets[i + 1]]`.
    fanin_offsets: Vec<u32>,
    fanin_edges: Vec<GateId>,
    /// CSR fan-out adjacency, same layout.
    fanout_offsets: Vec<u32>,
    fanout_edges: Vec<GateId>,
    topo: Vec<GateId>,
    digest: u64,
}

/// Incrementally updates an FNV-1a 64 hash with raw bytes.
fn fnv1a_extend(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

impl Netlist {
    /// Validates and builds a netlist.
    ///
    /// # Errors
    ///
    /// [`CircuitError::EmptyNetlist`] for no gates,
    /// [`CircuitError::UnknownGate`] for dangling fan-ins, and
    /// [`CircuitError::CombinationalLoop`] for cycles.
    pub fn new(gates: Vec<Gate>) -> Result<Self, CircuitError> {
        if gates.is_empty() {
            return Err(CircuitError::EmptyNetlist);
        }
        let n = gates.len();
        if n >= u32::MAX as usize {
            return Err(CircuitError::BadParameter(
                "netlist exceeds the u32 gate-id space",
            ));
        }
        for g in &gates {
            for f in &g.fanins {
                if f.index() >= n {
                    return Err(CircuitError::UnknownGate { index: f.index() });
                }
            }
        }
        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (i, g) in gates.iter().enumerate() {
            indeg[i] = g.fanins.len();
            for f in &g.fanins {
                fanouts[f.index()].push(GateId(i as u32));
            }
        }
        // Kahn's algorithm (stack order — kept stable so existing
        // analyses and golden artifacts see the same traversal).
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            topo.push(GateId(i as u32));
            for f in &fanouts[i] {
                indeg[f.index()] -= 1;
                if indeg[f.index()] == 0 {
                    queue.push(f.index());
                }
            }
        }
        if topo.len() != n {
            // topo.len() != n guarantees a positive in-degree exists; fall
            // back to 0 rather than panic if that invariant ever breaks.
            let stuck = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(CircuitError::CombinationalLoop { index: stuck });
        }
        // Decompose the AoS gate list into SoA columns + CSR tables.
        let edge_total: usize = gates.iter().map(|g| g.fanins.len()).sum();
        if edge_total >= u32::MAX as usize {
            return Err(CircuitError::BadParameter(
                "netlist exceeds the u32 edge space",
            ));
        }
        let mut this = Netlist {
            kinds: Vec::with_capacity(n),
            drives: Vec::with_capacity(n),
            supplies: Vec::with_capacity(n),
            vths: Vec::with_capacity(n),
            wire_caps: Vec::with_capacity(n),
            outputs: Vec::with_capacity(n),
            fanin_offsets: Vec::with_capacity(n + 1),
            fanin_edges: Vec::with_capacity(edge_total),
            fanout_offsets: Vec::new(),
            fanout_edges: Vec::new(),
            topo,
            digest: 0,
        };
        this.fanin_offsets.push(0);
        for g in &gates {
            this.kinds.push(g.kind);
            this.drives.push(g.drive);
            this.supplies.push(g.supply);
            this.vths.push(g.vth);
            this.wire_caps.push(g.wire_cap);
            this.outputs.push(g.is_output);
            this.fanin_edges.extend_from_slice(&g.fanins);
            this.fanin_offsets.push(this.fanin_edges.len() as u32);
        }
        this.build_fanout_csr();
        this.digest = this.compute_digest();
        Ok(this)
    }

    /// Builds the fan-out CSR from the fan-in CSR by counting sort:
    /// O(gates + edges), no per-gate allocations.
    fn build_fanout_csr(&mut self) {
        let n = self.kinds.len();
        let mut counts = vec![0u32; n + 1];
        for f in &self.fanin_edges {
            counts[f.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        self.fanout_offsets = counts.clone();
        self.fanout_edges = vec![GateId(0); self.fanin_edges.len()];
        // `counts` now doubles as the write cursor per source gate.
        for i in 0..n {
            let (s, e) = (
                self.fanin_offsets[i] as usize,
                self.fanin_offsets[i + 1] as usize,
            );
            for k in s..e {
                let src = self.fanin_edges[k].index();
                self.fanout_edges[counts[src] as usize] = GateId(i as u32);
                counts[src] += 1;
            }
        }
    }

    /// FNV-1a over the gate count, the fan-in CSR, and the output flags —
    /// everything immutable after construction.
    fn compute_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        fnv1a_extend(&mut h, &(self.kinds.len() as u64).to_le_bytes());
        for &o in &self.fanin_offsets {
            fnv1a_extend(&mut h, &o.to_le_bytes());
        }
        for &e in &self.fanin_edges {
            fnv1a_extend(&mut h, &e.0.to_le_bytes());
        }
        for &o in &self.outputs {
            fnv1a_extend(&mut h, &[u8::from(o)]);
        }
        h
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Always false: construction rejects empty netlists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A stable fingerprint of the netlist *topology* (gate count,
    /// fan-in structure, output flags). Two netlists with equal digests
    /// have identical connectivity; assignment mutations never change
    /// it. [`crate::incremental::IncrementalSta`] uses it to reject
    /// stale views.
    pub fn topology_digest(&self) -> u64 {
        self.digest
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is from another netlist (out of range).
    pub fn gate(&self, id: GateId) -> GateView<'_> {
        let i = id.index();
        GateView {
            kind: self.kinds[i],
            drive: self.drives[i],
            supply: self.supplies[i],
            vth: self.vths[i],
            wire_cap: self.wire_caps[i],
            is_output: self.outputs[i],
            fanins: self.fanins(id),
        }
    }

    /// Mutable access to a gate's assignment fields.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate_mut(&mut self, id: GateId) -> GateAssignment<'_> {
        assert!(id.index() < self.kinds.len(), "gate id out of range");
        GateAssignment {
            netlist: self,
            index: id.index(),
        }
    }

    /// Gate ids in a valid topological order (fan-ins first).
    pub fn topological_order(&self) -> &[GateId] {
        &self.topo
    }

    /// The fan-in gates of `id` (CSR slice).
    pub fn fanins(&self, id: GateId) -> &[GateId] {
        let i = id.index();
        &self.fanin_edges[self.fanin_offsets[i] as usize..self.fanin_offsets[i + 1] as usize]
    }

    /// The gates driven by `id` (CSR slice).
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        let i = id.index();
        &self.fanout_edges[self.fanout_offsets[i] as usize..self.fanout_offsets[i + 1] as usize]
    }

    /// Iterator over all gate ids in index order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.kinds.len() as u32).map(GateId)
    }

    /// Gates whose arrival is checked against the clock: gates marked
    /// `is_output` plus any gate with no fan-outs.
    pub fn timing_endpoints(&self) -> Vec<GateId> {
        self.ids()
            .filter(|&id| self.outputs[id.index()] || self.fanouts(id).is_empty())
            .collect()
    }

    /// Gates with no gate fan-ins (driven by primary inputs).
    pub fn entry_gates(&self) -> Vec<GateId> {
        self.ids()
            .filter(|&id| self.fanins(id).is_empty())
            .collect()
    }
}

/// Streaming netlist constructor for large designs.
///
/// Gates must be pushed in topological order — every fan-in must
/// reference an already-pushed gate — which is exactly what a layered
/// generator produces. Construction is O(gates + edges) with no
/// validation pass over the whole design at the end: acyclicity is
/// guaranteed by the push-order invariant, and the topological order is
/// the push order itself.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), np_circuit::CircuitError> {
/// use np_circuit::netlist::{Gate, NetlistBuilder};
/// use np_circuit::CellKind;
///
/// let mut b = NetlistBuilder::with_capacity(2, 1);
/// let g0 = b.push(&Gate::new(CellKind::Inverter, vec![]))?;
/// b.push(&Gate::new(CellKind::Nand2, vec![g0]).as_output())?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    kinds: Vec<CellKind>,
    drives: Vec<f64>,
    supplies: Vec<SupplyClass>,
    vths: Vec<VthClass>,
    wire_caps: Vec<Farads>,
    outputs: Vec<bool>,
    fanin_offsets: Vec<u32>,
    fanin_edges: Vec<GateId>,
}

impl NetlistBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// An empty builder with column capacity for `gates` gates and
    /// `edges` fan-in edges.
    pub fn with_capacity(gates: usize, edges: usize) -> Self {
        let mut fanin_offsets = Vec::with_capacity(gates + 1);
        fanin_offsets.push(0);
        NetlistBuilder {
            kinds: Vec::with_capacity(gates),
            drives: Vec::with_capacity(gates),
            supplies: Vec::with_capacity(gates),
            vths: Vec::with_capacity(gates),
            wire_caps: Vec::with_capacity(gates),
            outputs: Vec::with_capacity(gates),
            fanin_offsets,
            fanin_edges: Vec::with_capacity(edges),
        }
    }

    /// Gates pushed so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Appends a gate (copied out of `gate` — callers stream by reusing
    /// one `Gate` buffer) and returns its id.
    ///
    /// # Errors
    ///
    /// [`CircuitError::UnknownGate`] when a fan-in references a gate
    /// that has not been pushed yet (forward references would break the
    /// topological-push invariant), and
    /// [`CircuitError::BadParameter`] when the gate or edge count would
    /// overflow the `u32` id space.
    pub fn push(&mut self, gate: &Gate) -> Result<GateId, CircuitError> {
        let next = self.kinds.len();
        if next >= u32::MAX as usize {
            return Err(CircuitError::BadParameter(
                "netlist exceeds the u32 gate-id space",
            ));
        }
        for f in &gate.fanins {
            if f.index() >= next {
                return Err(CircuitError::UnknownGate { index: f.index() });
            }
        }
        if self.fanin_edges.len() + gate.fanins.len() >= u32::MAX as usize {
            return Err(CircuitError::BadParameter(
                "netlist exceeds the u32 edge space",
            ));
        }
        self.kinds.push(gate.kind);
        self.drives.push(gate.drive);
        self.supplies.push(gate.supply);
        self.vths.push(gate.vth);
        self.wire_caps.push(gate.wire_cap);
        self.outputs.push(gate.is_output);
        self.fanin_edges.extend_from_slice(&gate.fanins);
        self.fanin_offsets.push(self.fanin_edges.len() as u32);
        Ok(GateId(next as u32))
    }

    /// Finishes construction: builds the fan-out CSR (counting sort) and
    /// the topology digest. The topological order is the push order.
    ///
    /// # Errors
    ///
    /// [`CircuitError::EmptyNetlist`] when nothing was pushed.
    pub fn finish(self) -> Result<Netlist, CircuitError> {
        if self.kinds.is_empty() {
            return Err(CircuitError::EmptyNetlist);
        }
        let n = self.kinds.len();
        let mut this = Netlist {
            kinds: self.kinds,
            drives: self.drives,
            supplies: self.supplies,
            vths: self.vths,
            wire_caps: self.wire_caps,
            outputs: self.outputs,
            fanin_offsets: self.fanin_offsets,
            fanin_edges: self.fanin_edges,
            fanout_offsets: Vec::new(),
            fanout_edges: Vec::new(),
            topo: (0..n as u32).map(GateId).collect(),
            digest: 0,
        };
        this.build_fanout_csr();
        this.digest = this.compute_digest();
        Ok(this)
    }
}

/// Mutable view of a gate restricted to its assignment fields, so the
/// topology caches (and the topology digest) can never be invalidated.
#[derive(Debug)]
pub struct GateAssignment<'a> {
    netlist: &'a mut Netlist,
    index: usize,
}

impl GateAssignment<'_> {
    /// Sets the drive strength.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not positive.
    pub fn set_drive(&mut self, drive: f64) {
        assert!(drive > 0.0, "drive must be positive");
        self.netlist.drives[self.index] = drive;
    }

    /// Sets the supply class.
    pub fn set_supply(&mut self, supply: SupplyClass) {
        self.netlist.supplies[self.index] = supply;
    }

    /// Sets the threshold class.
    pub fn set_vth(&mut self, vth: VthClass) {
        self.netlist.vths[self.index] = vth;
    }

    /// Sets the output-net wire capacitance.
    pub fn set_wire_cap(&mut self, cap: Farads) {
        self.netlist.wire_caps[self.index] = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Netlist {
        let gates: Vec<Gate> = (0..n)
            .map(|i| {
                let fanins = if i == 0 {
                    vec![]
                } else {
                    vec![GateId::from_index(i - 1)]
                };
                let g = Gate::new(CellKind::Inverter, fanins);
                if i == n - 1 {
                    g.as_output()
                } else {
                    g
                }
            })
            .collect();
        Netlist::new(gates).expect("valid chain")
    }

    #[test]
    fn chain_has_linear_topology() {
        let nl = chain(5);
        assert_eq!(nl.len(), 5);
        assert_eq!(nl.entry_gates(), vec![GateId::from_index(0)]);
        assert_eq!(nl.timing_endpoints(), vec![GateId::from_index(4)]);
        assert_eq!(nl.fanouts(GateId::from_index(2)), &[GateId::from_index(3)]);
        // Topological order respects edges.
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (rank, id) in nl.topological_order().iter().enumerate() {
                pos[id.index()] = rank;
            }
            pos
        };
        for i in 1..5 {
            assert!(pos[i - 1] < pos[i]);
        }
    }

    #[test]
    fn empty_netlist_rejected() {
        assert!(matches!(
            Netlist::new(vec![]),
            Err(CircuitError::EmptyNetlist)
        ));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let err = Netlist::new(vec![Gate::new(
            CellKind::Inverter,
            vec![GateId::from_index(7)],
        )])
        .unwrap_err();
        assert!(matches!(err, CircuitError::UnknownGate { index: 7 }));
    }

    #[test]
    fn cycle_rejected() {
        let err = Netlist::new(vec![
            Gate::new(CellKind::Inverter, vec![GateId::from_index(1)]),
            Gate::new(CellKind::Inverter, vec![GateId::from_index(0)]),
        ])
        .unwrap_err();
        assert!(matches!(err, CircuitError::CombinationalLoop { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let err = Netlist::new(vec![Gate::new(
            CellKind::Inverter,
            vec![GateId::from_index(0)],
        )])
        .unwrap_err();
        assert!(matches!(err, CircuitError::CombinationalLoop { index: 0 }));
    }

    #[test]
    fn assignment_mutation_preserves_topology() {
        let mut nl = chain(3);
        let g1 = GateId::from_index(1);
        nl.gate_mut(g1).set_drive(8.0);
        nl.gate_mut(g1).set_supply(SupplyClass::Low);
        nl.gate_mut(g1).set_vth(VthClass::High);
        nl.gate_mut(g1).set_wire_cap(Farads::from_femto(3.0));
        let g = nl.gate(g1);
        assert_eq!(g.drive, 8.0);
        assert_eq!(g.supply, SupplyClass::Low);
        assert_eq!(g.vth, VthClass::High);
        assert_eq!(nl.fanouts(GateId::from_index(0)), &[g1]);
    }

    #[test]
    fn assignment_mutation_keeps_the_digest() {
        let mut nl = chain(4);
        let before = nl.topology_digest();
        nl.gate_mut(GateId::from_index(1)).set_drive(4.0);
        nl.gate_mut(GateId::from_index(2))
            .set_supply(SupplyClass::Low);
        assert_eq!(nl.topology_digest(), before);
        // A structurally different netlist digests differently.
        assert_ne!(chain(5).topology_digest(), before);
    }

    #[test]
    #[should_panic(expected = "drive must be positive")]
    fn non_positive_drive_panics() {
        let mut nl = chain(2);
        nl.gate_mut(GateId::from_index(0)).set_drive(0.0);
    }

    #[test]
    fn builders_compose() {
        let g = Gate::new(CellKind::Nand2, vec![])
            .with_drive(4.0)
            .with_wire_cap(Farads::from_femto(2.0))
            .as_output();
        assert_eq!(g.drive, 4.0);
        assert!(g.is_output);
        assert!((g.wire_cap.as_femto() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gate_id_display() {
        assert_eq!(format!("{}", GateId::from_index(12)), "g12");
    }

    #[test]
    fn diamond_topology_fanouts() {
        //      0
        //    /   \
        //   1     2
        //    \   /
        //      3
        let nl = Netlist::new(vec![
            Gate::new(CellKind::Inverter, vec![]),
            Gate::new(CellKind::Inverter, vec![GateId::from_index(0)]),
            Gate::new(CellKind::Inverter, vec![GateId::from_index(0)]),
            Gate::new(
                CellKind::Nand2,
                vec![GateId::from_index(1), GateId::from_index(2)],
            )
            .as_output(),
        ])
        .unwrap();
        assert_eq!(nl.fanouts(GateId::from_index(0)).len(), 2);
        assert_eq!(nl.gate(GateId::from_index(3)).fanins.len(), 2);
    }

    #[test]
    fn streamed_builder_matches_batch_construction() {
        // The same diamond through both constructors: equal structure,
        // equal digests, equal adjacency.
        let gates = vec![
            Gate::new(CellKind::Inverter, vec![]),
            Gate::new(CellKind::Inverter, vec![GateId::from_index(0)]),
            Gate::new(CellKind::Inverter, vec![GateId::from_index(0)]),
            Gate::new(
                CellKind::Nand2,
                vec![GateId::from_index(1), GateId::from_index(2)],
            )
            .as_output(),
        ];
        let batch = Netlist::new(gates.clone()).unwrap();
        let mut b = NetlistBuilder::with_capacity(gates.len(), 4);
        for g in &gates {
            b.push(g).unwrap();
        }
        let streamed = b.finish().unwrap();
        assert_eq!(batch.topology_digest(), streamed.topology_digest());
        for id in batch.ids() {
            assert_eq!(batch.fanins(id), streamed.fanins(id));
            assert_eq!(batch.fanouts(id), streamed.fanouts(id));
            assert_eq!(batch.gate(id).kind, streamed.gate(id).kind);
        }
        assert_eq!(batch.timing_endpoints(), streamed.timing_endpoints());
    }

    #[test]
    fn builder_rejects_forward_references_and_empty() {
        let mut b = NetlistBuilder::new();
        assert!(b.is_empty());
        let err = b
            .push(&Gate::new(CellKind::Inverter, vec![GateId::from_index(1)]))
            .unwrap_err();
        assert!(matches!(err, CircuitError::UnknownGate { index: 1 }));
        assert!(matches!(
            NetlistBuilder::new().finish(),
            Err(CircuitError::EmptyNetlist)
        ));
    }
}
