//! Incremental-vs-full STA equivalence over random edit sequences, and
//! the million-gate scaling acceptance checks.
//!
//! The incremental engine re-propagates only the fan-out cone of a
//! changed gate; these tests drive random multi-gate edit sequences
//! through it and hold its arrival times to the full-analysis oracle at
//! 1e-12, at both the 1k and 100k cell tiers.

use np_circuit::cell::{SupplyClass, VthClass};
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::incremental::IncrementalSta;
use np_circuit::netlist::{GateId, Netlist};
use np_circuit::sta::TimingContext;
use np_roadmap::TechNode;
use proptest::prelude::*;

/// Absolute arrival-time agreement demanded of the incremental engine
/// (seconds; arrivals are ~1e-9, so this is ~1e-3 of an LSB of slack).
const TOLERANCE: f64 = 1e-12;

fn ctx_for(netlist: &Netlist, clock_factor: f64) -> TimingContext {
    let ctx = TimingContext::for_node(TechNode::N100).expect("calibration");
    let crit = ctx.analyze(netlist).expect("analyze").critical_delay();
    ctx.with_clock(crit * clock_factor)
}

/// One random single-gate edit, decoded from a single proptest draw
/// (`edit / 1000` selects the move kind, `edit % 1000` the gate).
fn apply_edit(netlist: &mut Netlist, which: usize, pick: usize) -> GateId {
    let ids: Vec<GateId> = netlist.ids().collect();
    let id = ids[pick % ids.len()];
    let mut g = netlist.gate_mut(id);
    match which % 5 {
        0 => g.set_vth(VthClass::High),
        1 => g.set_vth(VthClass::Low),
        2 => g.set_supply(SupplyClass::Low),
        3 => g.set_supply(SupplyClass::High),
        _ => {
            let drive = netlist.gate(id).drive;
            netlist.gate_mut(id).set_drive((drive * 0.7).max(0.5));
        }
    }
    id
}

fn assert_matches_oracle(netlist: &Netlist, ctx: &TimingContext, sta: &IncrementalSta<'_>) {
    let full = ctx.analyze(netlist).expect("oracle analyze");
    for id in netlist.ids() {
        let inc = sta.arrival_of(id).0;
        let exact = full.arrival[id.index()].0;
        assert!(
            (inc - exact).abs() <= TOLERANCE,
            "{id}: incremental {inc:e} vs full {exact:e}"
        );
    }
    assert_eq!(
        sta.is_feasible(),
        full.is_feasible(),
        "feasibility verdicts diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1k-cell tier: every edit in a random sequence is re-propagated
    /// incrementally and checked against a fresh full analysis.
    #[test]
    fn random_edit_sequences_match_full_sta_at_1k(
        seed in 0u64..200,
        edits in proptest::collection::vec(0usize..5_000, 5..25),
    ) {
        let mut netlist = generate_netlist(&NetlistSpec::large(seed, 1000));
        let ctx = ctx_for(&netlist, 1.2);
        let mut sta = IncrementalSta::new(&ctx, &netlist);
        for edit in edits {
            let id = apply_edit(&mut netlist, edit / 1000, edit % 1000);
            sta.reevaluate(&netlist, id).expect("same topology");
            assert_matches_oracle(&netlist, &ctx, &sta);
        }
    }

    /// Batch form: applying a whole group of edits then one batch
    /// re-propagation must agree with the oracle too.
    #[test]
    fn batched_edits_match_full_sta_at_1k(
        seed in 0u64..200,
        edits in proptest::collection::vec(0usize..5_000, 2..12),
    ) {
        let mut netlist = generate_netlist(&NetlistSpec::large(seed, 1000));
        let ctx = ctx_for(&netlist, 1.2);
        let mut sta = IncrementalSta::new(&ctx, &netlist);
        let changed: Vec<GateId> = edits
            .into_iter()
            .map(|edit| apply_edit(&mut netlist, edit / 1000, edit % 1000))
            .collect();
        sta.reevaluate_batch(&netlist, &changed).expect("same topology");
        assert_matches_oracle(&netlist, &ctx, &sta);
    }
}

/// 100k-cell tier: a fixed-seed edit sequence with periodic oracle
/// checks (each full analysis is the expensive part; the incremental
/// updates are microseconds).
#[test]
fn random_edit_sequence_matches_full_sta_at_100k() {
    let mut netlist = generate_netlist(&NetlistSpec::large(9, 100_000));
    let ctx = ctx_for(&netlist, 1.2);
    let mut sta = IncrementalSta::new(&ctx, &netlist);
    let mut state = 0x3cf5_u64;
    for round in 0..20 {
        // xorshift: deterministic, dependency-free edit stream.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let id = apply_edit(
            &mut netlist,
            (state >> 32) as usize,
            state as usize % 100_000,
        );
        let cone = sta.reevaluate(&netlist, id).expect("same topology");
        assert!(
            cone.visited < 100_000 / 4,
            "cone {} should be a sliver of the netlist",
            cone.visited
        );
        if round % 5 == 4 {
            assert_matches_oracle(&netlist, &ctx, &sta);
        }
    }
}

/// The scaling acceptance check: a million-cell netlist streams in,
/// full-STAs, and incremental probes touch only their fan-out cones.
#[test]
fn million_gate_netlist_streams_analyzes_and_probes_in_small_cones() {
    const N: usize = 1_000_000;
    let netlist = generate_netlist(&NetlistSpec::large(3, N));
    assert_eq!(netlist.len(), N);
    let ctx = ctx_for(&netlist, 1.2);
    let mut probe_netlist = netlist.clone();
    let mut sta = IncrementalSta::new(&ctx, &netlist);
    assert!(sta.is_feasible());
    let mut total_visited = 0usize;
    let probes = 25usize;
    for k in 0..probes {
        let id = GateId::from_index(k * (N / probes) + N / (2 * probes));
        let flipped = match probe_netlist.gate(id).vth {
            VthClass::Low => VthClass::High,
            VthClass::High => VthClass::Low,
        };
        probe_netlist.gate_mut(id).set_vth(flipped);
        let cone = sta.reevaluate(&probe_netlist, id).expect("same topology");
        assert!(
            cone.visited < N / 100,
            "probe {k}: cone {} is not a sliver of {N}",
            cone.visited
        );
        total_visited += cone.visited;
    }
    // The average touched cone is orders of magnitude below the netlist:
    // this is the measured incremental-vs-full saving.
    let mean = total_visited as f64 / probes as f64;
    assert!(mean < 2_000.0, "mean cone {mean} too large for {N} cells");
}
