//! Property-based tests on netlist generation, STA, and power invariants.

use np_circuit::cell::{SupplyClass, VthClass};
use np_circuit::generate::{generate_netlist, NetlistSpec};
use np_circuit::power::netlist_power;
use np_circuit::sta::TimingContext;
use np_roadmap::TechNode;
use np_units::{Hertz, Seconds};
use proptest::prelude::*;

fn spec(seed: u64, gates: usize, depth: usize) -> NetlistSpec {
    NetlistSpec {
        gates,
        depth,
        seed,
        output_fraction: 0.1,
        mean_wire_cap_ff: 3.0,
        balanced_depth: false,
        streaming: false,
    }
}

fn ctx() -> TimingContext {
    TimingContext::for_node(TechNode::N100).expect("calibration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_netlists_are_valid_dags(
        seed in 0u64..1000,
        gates in 20usize..150,
        depth in 3usize..15,
    ) {
        let nl = generate_netlist(&spec(seed, gates, depth));
        prop_assert_eq!(nl.len(), gates);
        // Construction validates acyclicity; also check fan-in ordering.
        for id in nl.ids() {
            for f in nl.gate(id).fanins {
                prop_assert!(f.index() < id.index());
            }
        }
        prop_assert!(!nl.timing_endpoints().is_empty());
    }

    #[test]
    fn arrival_times_are_monotone_along_edges(seed in 0u64..500) {
        let nl = generate_netlist(&spec(seed, 80, 8));
        let c = ctx().with_clock(Seconds::from_nano(100.0));
        let rep = c.analyze(&nl).unwrap();
        for id in nl.ids() {
            for f in nl.gate(id).fanins {
                prop_assert!(
                    rep.arrival[id.index()] > rep.arrival[f.index()],
                    "arrival must grow along edges"
                );
            }
        }
    }

    #[test]
    fn slack_is_bounded_by_endpoint_slack(seed in 0u64..500) {
        let nl = generate_netlist(&spec(seed, 80, 8));
        let c = ctx().with_clock(Seconds::from_nano(100.0));
        let rep = c.analyze(&nl).unwrap();
        let worst = rep.worst_slack();
        for id in nl.ids() {
            prop_assert!(rep.slack[id.index()] >= worst);
        }
    }

    #[test]
    fn relaxing_the_clock_never_reduces_slack(seed in 0u64..300, extra in 0.01..2.0f64) {
        let nl = generate_netlist(&spec(seed, 60, 8));
        let base = ctx().with_clock(Seconds::from_nano(1.0));
        let relaxed = ctx().with_clock(Seconds::from_nano(1.0 + extra));
        let a = base.analyze(&nl).unwrap();
        let b = relaxed.analyze(&nl).unwrap();
        for id in nl.ids() {
            prop_assert!(b.slack[id.index()].0 >= a.slack[id.index()].0 - 1e-18);
        }
    }

    #[test]
    fn slowing_any_gate_never_improves_arrival(seed in 0u64..200, pick in 0usize..60) {
        let mut nl = generate_netlist(&spec(seed, 60, 8));
        let c = ctx().with_clock(Seconds::from_nano(100.0));
        let before = c.analyze(&nl).unwrap().critical_delay();
        let ids: Vec<_> = nl.ids().collect();
        let victim = ids[pick % ids.len()];
        nl.gate_mut(victim).set_vth(VthClass::High);
        let after = c.analyze(&nl).unwrap().critical_delay();
        prop_assert!(after.0 >= before.0 - 1e-18);
    }

    #[test]
    fn low_supply_assignment_only_reduces_power(seed in 0u64..200, pick in 0usize..60) {
        let mut nl = generate_netlist(&spec(seed, 60, 8));
        let c = ctx();
        let f = Hertz::from_giga(1.0);
        let before = netlist_power(&nl, &c, 0.1, f).unwrap();
        let ids: Vec<_> = nl.ids().collect();
        let victim = ids[pick % ids.len()];
        nl.gate_mut(victim).set_supply(SupplyClass::Low);
        let after = netlist_power(&nl, &c, 0.1, f).unwrap();
        // Leakage always falls; dynamic falls unless the level-converter
        // energy on new Low->High edges outweighs it, so check the total
        // conservative bound: leakage strictly improves.
        prop_assert!(after.leakage < before.leakage);
    }

    #[test]
    fn power_scales_linearly_with_frequency(seed in 0u64..200, k in 1.1..8.0f64) {
        let nl = generate_netlist(&spec(seed, 60, 8));
        let c = ctx();
        let base = netlist_power(&nl, &c, 0.1, Hertz::from_giga(1.0)).unwrap();
        let scaled = netlist_power(&nl, &c, 0.1, Hertz(1e9 * k)).unwrap();
        prop_assert!((scaled.dynamic.0 / base.dynamic.0 / k - 1.0).abs() < 1e-9);
        prop_assert!((scaled.leakage.0 - base.leakage.0).abs() < 1e-15);
    }
}

mod io_properties {
    use super::*;
    use np_circuit::io::{parse_netlist, write_netlist};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn parser_never_panics_on_arbitrary_text(text in ".{0,400}") {
            // Any input must produce Ok or a typed error, never a panic.
            let _ = parse_netlist(&text);
        }

        #[test]
        fn parser_never_panics_on_gate_shaped_lines(
            id in 0usize..20,
            kind in "[A-Z]{2,4}",
            attr in "[a-z_]{1,8}=[-0-9a-z.]{1,8}",
        ) {
            let text = format!("gate g{id} {kind} {attr}\n");
            let _ = parse_netlist(&text);
        }

        #[test]
        fn write_parse_round_trips_generated_netlists(seed in 0u64..500) {
            let nl = generate_netlist(&spec(seed, 60, 8));
            let text = write_netlist(&nl);
            let back = parse_netlist(&text).expect("own output must parse");
            prop_assert_eq!(nl.len(), back.len());
            for id in nl.ids() {
                prop_assert_eq!(nl.gate(id).kind, back.gate(id).kind);
                prop_assert_eq!(&nl.gate(id).fanins, &back.gate(id).fanins);
                prop_assert_eq!(nl.gate(id).is_output, back.gate(id).is_output);
            }
        }
    }
}
