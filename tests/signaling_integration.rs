//! Integration: global signaling — repeater census, low-swing links, and
//! the node-by-node comparison report agree with each other.

use nanopower::device::Mosfet;
use nanopower::interconnect::chip::global_signaling_report;
use nanopower::interconnect::elmore::RcLine;
use nanopower::interconnect::lowswing::LowSwingLink;
use nanopower::interconnect::repeater::{
    insert_repeaters, repeater_census, DriverTech, GLOBAL_ACTIVITY,
};
use nanopower::interconnect::wire::WireGeometry;
use nanopower::roadmap::TechNode;
use nanopower::units::{Microns, Watts};

#[test]
fn repeater_counts_explode_along_the_roadmap() {
    let c180 = repeater_census(TechNode::N180).expect("census");
    let c50 = repeater_census(TechNode::N50).expect("census");
    // Paper: ~10^4 at 180 nm to nearly 10^6 at 50 nm.
    assert!(c180.repeater_count < 100_000);
    assert!(c50.repeater_count > 300_000);
    assert!(c50.repeater_count / c180.repeater_count.max(1) > 20);
    // "over 50 W of power in the nanometer regime".
    assert!(c50.power > Watts(30.0));
}

#[test]
fn report_power_matches_census() {
    for node in [TechNode::N70, TechNode::N50] {
        let census = repeater_census(node).expect("census");
        let report = global_signaling_report(node).expect("report");
        assert_eq!(census.repeater_count, report.repeater_count);
        assert!((census.power.0 - report.repeated_power.0).abs() < 1e-9);
    }
}

#[test]
fn lowswing_report_consistent_with_link_energetics() {
    // Rebuild the low-swing power from first principles and compare with
    // the report.
    let node = TechNode::N50;
    let p = node.params();
    let report = global_signaling_report(node).expect("report");
    let probe = RcLine::new(WireGeometry::top_level(node), Microns(10_000.0)).expect("line");
    let link = LowSwingLink::new(probe, p.vdd).expect("link");
    let expected = Watts(
        GLOBAL_ACTIVITY
            * p.global_clock.0
            * (link.energy_per_transition() / 10_000.0)
            * report.wire_length.0,
    );
    assert!(
        (report.lowswing_power.0 / expected.0 - 1.0).abs() < 1e-9,
        "report {} vs rebuilt {}",
        report.lowswing_power,
        expected
    );
}

#[test]
fn repeated_wires_meet_global_clocks() {
    // A cross-die wire, repeated, must fit within a few cycles of the
    // node's global clock — the premise of Section 2.2's latency
    // discussion.
    for node in [TechNode::N70, TechNode::N50, TechNode::N35] {
        let p = node.params();
        let dev = Mosfet::for_node(node).expect("calibration");
        let tech = DriverTech::from_device(&dev, p.vdd).expect("driver");
        let die_side = p.die_area.side();
        let line = RcLine::new(WireGeometry::top_level(node), die_side).expect("line");
        let design = insert_repeaters(&line, &tech).expect("repeaters");
        let cycles = design.total_delay.0 / p.global_clock.period().0;
        assert!(
            cycles < 8.0,
            "{node}: cross-die repeated wire takes {cycles:.1} global cycles"
        );
    }
}

#[test]
fn unscaled_wiring_cuts_repeater_count() {
    use nanopower::interconnect::repeater::repeater_census_with;
    let node = TechNode::N35;
    let scaled = repeater_census(node).expect("census");
    let unscaled =
        repeater_census_with(node, WireGeometry::top_level_unscaled(node)).expect("census");
    assert!(unscaled.repeater_count < scaled.repeater_count / 2);
}
