//! Integration: the Section 3.3 combined flow across seeds — savings
//! compose, timing survives, and each stage keeps its invariants.

use nanopower::circuit::generate::{generate_netlist, NetlistSpec};
use nanopower::circuit::power::netlist_power;
use nanopower::circuit::sta::TimingContext;
use nanopower::opt::combined::{optimize, CombinedOptions};
use nanopower::roadmap::TechNode;
use nanopower::units::Hertz;

fn setup(seed: u64, factor: f64) -> (nanopower::circuit::Netlist, TimingContext) {
    let nl = generate_netlist(&NetlistSpec::small(seed));
    let ctx = TimingContext::for_node(TechNode::N70).expect("ctx");
    let crit = ctx.analyze(&nl).expect("sta").critical_delay();
    (nl, ctx.with_clock(crit * factor))
}

#[test]
fn combined_flow_composes_across_seeds() {
    for seed in [1u64, 12, 123] {
        let (mut nl, ctx) = setup(seed, 1.35);
        let r = optimize(&mut nl, &ctx, &CombinedOptions::default()).expect("optimize");
        assert!(
            r.total_saving() > 0.25,
            "seed {seed}: {:.0}%",
            r.total_saving() * 100.0
        );
        assert!(r.leakage_saving() > 0.25, "seed {seed}");
        assert!(ctx.analyze(&nl).expect("sta").is_feasible(), "seed {seed}");
        // Reported final power matches an independent recomputation.
        let freq = Hertz(1.0 / ctx.clock_period.0);
        let recheck = netlist_power(&nl, &ctx, 0.1, freq).expect("power");
        assert!((recheck.total().0 / r.final_power.total().0 - 1.0).abs() < 1e-9);
    }
}

#[test]
fn stage_ordering_matters() {
    // CVS-first (the paper's order) captures at least as much low-Vdd
    // cluster as sizing-first.
    let (mut a, ctx_a) = setup(42, 1.35);
    let full = optimize(&mut a, &ctx_a, &CombinedOptions::default()).expect("optimize");

    let (mut b, ctx_b) = setup(42, 1.35);
    let _ = nanopower::opt::sizing::downsize(&mut b, &ctx_b, 0.1, None).expect("sizing");
    let cvs_after = nanopower::opt::cvs::cluster_voltage_scale(
        &mut b,
        &ctx_b,
        &nanopower::opt::cvs::CvsOptions::default(),
    )
    .expect("cvs");
    assert!(full.cvs.fraction_low >= cvs_after.fraction_low);
}

#[test]
fn disabled_stages_do_nothing() {
    let (mut nl, ctx) = setup(9, 1.3);
    let opts = CombinedOptions {
        enable_sizing: false,
        enable_dual_vth: false,
        ..CombinedOptions::default()
    };
    let r = optimize(&mut nl, &ctx, &opts).expect("optimize");
    assert!(r.sizing.is_none());
    assert!(r.dual_vth.is_none());
    // All savings then come from CVS alone.
    assert!((r.dynamic_saving() - r.cvs.dynamic_saving()).abs() < 1e-9);
}

#[test]
fn infeasible_designs_are_rejected_up_front() {
    let (mut nl, ctx) = setup(5, 0.6);
    let err = optimize(&mut nl, &ctx, &CombinedOptions::default()).unwrap_err();
    assert!(matches!(
        err,
        nanopower::opt::OptError::TimingInfeasible { .. }
    ));
}
