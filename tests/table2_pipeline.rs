//! Integration: the full Table 2 pipeline — roadmap parameters → mobility
//! calibration → per-node Vth solve → Ioff projections — through the
//! `nanopower` facade.

use nanopower::device::{GateKind, Mosfet};
use nanopower::roadmap::TechNode;
use nanopower::units::Volts;

#[test]
fn vth_sequence_reproduces_the_paper() {
    let paper_vth = [0.30, 0.29, 0.22, 0.14, 0.04, 0.11];
    for (node, expect) in TechNode::ALL.into_iter().zip(paper_vth) {
        let dev = Mosfet::for_node(node).expect("calibration");
        assert!(
            (dev.vth.0 - expect).abs() < 0.035,
            "{node}: Vth {:.3} vs paper {expect}",
            dev.vth.0
        );
        // The solve actually hit the target.
        let ion = dev.ion(node.params().vdd).expect("drive");
        assert!((ion.0 - 750.0).abs() < 1.0);
    }
}

#[test]
fn model_exceeds_itrs_leakage_at_roadmap_end() {
    // Paper observation 3: the model's 35 nm leakage is ~2.9X the ITRS
    // projection, and the roadmap-wide rise is much larger than ITRS's.
    let n35 = Mosfet::for_node(TechNode::N35).expect("calibration");
    let model = n35.ioff().as_nano_per_micron();
    let itrs = TechNode::N35.params().ioff_itrs.as_nano_per_micron();
    let excess = model / itrs;
    assert!((1.5..=4.5).contains(&excess), "got {excess:.2}X");
}

#[test]
fn metal_gate_and_alt_supply_relief() {
    // Observation 1: metal gates allow ~55 mV more Vth at 35 nm.
    let poly = Mosfet::for_node(TechNode::N35).expect("calibration");
    let metal =
        Mosfet::for_node_with(TechNode::N35, Volts(0.6), GateKind::Metal).expect("calibration");
    assert!(metal.vth > poly.vth);
    assert!(metal.ioff() < poly.ioff() * 0.5);

    // Observation 2: 0.7 V at 50 nm cuts Ioff by "nearly 7X".
    let hard = Mosfet::for_node(TechNode::N50).expect("calibration");
    let relaxed = Mosfet::for_node_with(TechNode::N50, Volts(0.7), GateKind::PolySilicon)
        .expect("calibration");
    let relief = hard.ioff() / relaxed.ioff();
    assert!((4.0..=25.0).contains(&relief), "got {relief:.1}X");
}

#[test]
fn ioff_2x_per_generation_costs_25mv_of_vth() {
    // Section 3.1: "the 2X increase in Ioff/generation listed in [1]
    // allows just a 25mV drop in Vth in each technology" — a pure Eq. 4
    // identity: S·log10(2) ≈ 25.6 mV.
    let dev = Mosfet::for_node(TechNode::N100).expect("calibration");
    let dropped = dev.with_vth(dev.vth - Volts(0.0256));
    let ratio = dropped.ioff() / dev.ioff();
    assert!((ratio - 2.0).abs() < 0.02, "got {ratio:.3}");
}

#[test]
fn hot_junction_multiplies_leakage_by_an_order() {
    // The Fig. 1 analyses run at 85 C; integration check that the
    // temperature model produces the expected order-of-magnitude blow-up.
    for node in TechNode::NANOMETER {
        let cold = Mosfet::for_node(node).expect("calibration");
        let hot = cold.with_temperature(nanopower::units::Celsius(85.0));
        let blowup = hot.ioff() / cold.ioff();
        assert!((4.0..=30.0).contains(&blowup), "{node}: {blowup:.1}X");
    }
}
