//! Integration: clustered voltage scaling never violates timing and keeps
//! the clustering invariant, across seeds and nodes.

use nanopower::circuit::cell::SupplyClass;
use nanopower::circuit::generate::{generate_netlist, NetlistSpec};
use nanopower::circuit::sta::TimingContext;
use nanopower::opt::cvs::{cluster_voltage_scale, CvsOptions, CvsStyle};
use nanopower::roadmap::TechNode;

fn run_cvs(
    node: TechNode,
    seed: u64,
    clock_factor: f64,
    style: CvsStyle,
) -> (
    nanopower::circuit::Netlist,
    TimingContext,
    nanopower::opt::cvs::CvsResult,
) {
    let mut nl = generate_netlist(&NetlistSpec::small(seed));
    let ctx = TimingContext::for_node(node).expect("context");
    let crit = ctx.analyze(&nl).expect("sta").critical_delay();
    let ctx = ctx.with_clock(crit * clock_factor);
    let opts = CvsOptions {
        style,
        ..CvsOptions::default()
    };
    let r = cluster_voltage_scale(&mut nl, &ctx, &opts).expect("cvs");
    (nl, ctx, r)
}

#[test]
fn timing_is_met_across_seeds_and_nodes() {
    for node in [TechNode::N130, TechNode::N100, TechNode::N70] {
        for seed in [1u64, 2, 3] {
            let (nl, ctx, r) = run_cvs(node, seed, 1.3, CvsStyle::Clustered);
            assert!(r.timing_met, "{node} seed {seed}");
            assert!(ctx.analyze(&nl).expect("sta").is_feasible());
            assert!(r.dynamic_saving() >= 0.0);
        }
    }
}

#[test]
fn clustering_invariant_holds_for_every_seed() {
    for seed in [5u64, 6, 7, 8] {
        let (nl, _ctx, _r) = run_cvs(TechNode::N100, seed, 1.5, CvsStyle::Clustered);
        for id in nl.ids() {
            let g = nl.gate(id);
            if g.supply == SupplyClass::Low && !g.is_output {
                for &f in nl.fanouts(id) {
                    assert_eq!(
                        nl.gate(f).supply,
                        SupplyClass::Low,
                        "seed {seed}: clustered CVS produced a mid-cone conversion"
                    );
                }
            }
        }
    }
}

#[test]
fn extended_style_buys_cluster_size_for_converters() {
    let (_, _, clustered) = run_cvs(TechNode::N100, 9, 1.3, CvsStyle::Clustered);
    let (_, _, extended) = run_cvs(TechNode::N100, 9, 1.3, CvsStyle::Extended);
    assert!(extended.low_count >= clustered.low_count);
    assert!(extended.converters >= clustered.converters);
}

#[test]
fn savings_scale_with_available_slack() {
    let (_, _, tight) = run_cvs(TechNode::N100, 11, 1.05, CvsStyle::Clustered);
    let (_, _, loose) = run_cvs(TechNode::N100, 11, 1.7, CvsStyle::Clustered);
    assert!(loose.fraction_low > tight.fraction_low);
    assert!(loose.dynamic_saving() >= tight.dynamic_saving());
    // The relaxed configuration approaches the paper's regime.
    assert!(
        loose.fraction_low > 0.55,
        "got {:.0}% low",
        loose.fraction_low * 100.0
    );
}
