//! Integration: identities that must hold *across* crates — the same
//! physics seen through different modules agrees.

use nanopower::circuit::cell::{CellKind, SupplyClass, VthClass};
use nanopower::circuit::generate::{generate_netlist, NetlistSpec};
use nanopower::circuit::power::netlist_power;
use nanopower::circuit::sta::TimingContext;
use nanopower::device::delay::fo4_delay;
use nanopower::roadmap::TechNode;
use nanopower::units::{Hertz, Volts};

#[test]
fn timing_context_multipliers_match_device_model() {
    // The STA's delay multiplier for (supply, Vth) must equal the device
    // model's Vdd/Ion ratio, recomputed here from first principles.
    let ctx = TimingContext::for_node(TechNode::N70).expect("ctx");
    let dev = ctx.device().clone();
    let reference = ctx.vdd_high.0 / dev.ion(ctx.vdd_high).expect("ion").0;
    for (supply, vdd) in [
        (SupplyClass::High, ctx.vdd_high),
        (SupplyClass::Low, ctx.vdd_low),
    ] {
        for (vth_class, vth) in [(VthClass::Low, ctx.vth_low), (VthClass::High, ctx.vth_high)] {
            let expect = (vdd.0 / dev.with_vth(vth).ion(vdd).expect("ion").0) / reference;
            let got = ctx.delay_multiplier(supply, vth_class);
            assert!(
                (got / expect - 1.0).abs() < 1e-9,
                "multiplier mismatch for {supply:?}/{vth_class:?}"
            );
        }
    }
}

#[test]
fn tau_is_consistent_with_device_fo4() {
    for node in TechNode::ALL {
        let ctx = TimingContext::for_node(node).expect("ctx");
        let fo4 = fo4_delay(ctx.device(), node.params().vdd).expect("fo4");
        assert!((ctx.tau().0 * 5.0 - fo4.0).abs() < 1e-18, "{node}");
    }
}

#[test]
fn netlist_leakage_recomputable_from_device_model() {
    // Sum the per-gate leakage by hand with the device model and compare
    // with the power module.
    let nl = generate_netlist(&NetlistSpec::small(13));
    let ctx = TimingContext::for_node(TechNode::N70).expect("ctx");
    let freq = Hertz::from_giga(1.0);
    let report = netlist_power(&nl, &ctx, 0.1, freq).expect("power");
    let dev = ctx.device();
    let mut hand = 0.0;
    for id in nl.ids() {
        let g = nl.gate(id);
        let vdd = ctx.supply_voltage(g.supply);
        let ioff = dev
            .with_vth(ctx.threshold_voltage(g.vth))
            .ioff_at_drain(vdd);
        hand += ioff.total(ctx.leak_width(g.kind, g.drive)).0 * vdd.0;
    }
    assert!((report.leakage.0 / hand - 1.0).abs() < 1e-9);
}

#[test]
fn roadmap_identities() {
    // Quantities quoted in the paper, recomputed through the facade.
    let n35 = TechNode::N35.params();
    assert!((n35.worst_case_current().0 - 305.0).abs() < 10.0);
    assert!((n35.standby_current_allowance().0 - 30.5).abs() < 1.0);
    let p = nanopower::roadmap::survey::dynamic_power_penalty(Volts(1.2), Volts(0.9));
    assert!((p - 0.78).abs() < 0.01);
}

#[test]
fn library_cells_match_context_caps() {
    // The library's unit inverter and the timing context's unit cap come
    // from the same device; they must agree.
    let lib = nanopower::circuit::Library::rich(TechNode::N100).expect("library");
    let ctx = TimingContext::for_node(TechNode::N100).expect("ctx");
    assert!((lib.unit_cap().0 / ctx.unit_cap().0 - 1.0).abs() < 1e-9);
    let inv1 = lib.smallest(CellKind::Inverter).expect("inverter");
    assert!((inv1.input_cap.0 / ctx.input_cap(CellKind::Inverter, 1.0).0 - 1.0).abs() < 1e-9);
}

#[test]
fn dual_vth_multiplier_is_universal() {
    // The 15X-per-100-mV rule must be visible at device level, in the
    // timing context's threshold pair, and in netlist leakage.
    let ctx = TimingContext::for_node(TechNode::N50).expect("ctx");
    let dev = ctx.device();
    let device_ratio = dev.with_vth(ctx.vth_low).ioff() / dev.with_vth(ctx.vth_high).ioff();
    let expect = nanopower::device::dualvth::ioff_multiplier(ctx.vth_high - ctx.vth_low);
    assert!((device_ratio / expect - 1.0).abs() < 1e-9);
}
