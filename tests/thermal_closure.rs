//! Integration: thermal models end-to-end — Eq. 1, the electro-thermal
//! fixed point with the calibrated device, DTM simulation, cooling cost.

use nanopower::chip::Chip;
use nanopower::device::Mosfet;
use nanopower::roadmap::{PackagingRoadmap, TechNode};
use nanopower::thermal::cost::cooling_cost_dollars;
use nanopower::thermal::dtm::{simulate, DtmPolicy};
use nanopower::thermal::package::Package;
use nanopower::thermal::rc::{ThermalRc, DEFAULT_HEAT_CAPACITY_J_PER_C};
use nanopower::thermal::workload::WorkloadTrace;
use nanopower::units::{Celsius, Microns, Seconds, Volts, Watts};

#[test]
fn chip_closure_reports_the_33_percent_headroom() {
    for node in TechNode::NANOMETER {
        let c = Chip::at_node(node).thermal_closure().expect("closure");
        assert!((c.headroom - 1.0 / 3.0).abs() < 1e-9, "{node}");
        assert!(c.cost_dtm <= c.cost_theoretical);
        // The DTM-protected, effective-sized package holds the junction
        // at or under the ITRS limit on a realistic trace.
        let limit = PackagingRoadmap::for_node(node).t_junction_max;
        assert!(
            c.dtm.max_temperature <= limit + Celsius(2.0),
            "{node}: {}",
            c.dtm.max_temperature
        );
        assert!(
            c.dtm.performance > 0.9,
            "{node}: perf {}",
            c.dtm.performance
        );
    }
}

#[test]
fn electro_thermal_fixed_point_with_calibrated_device() {
    // The leakage-temperature loop closes for a sane 70 nm chip and the
    // closed-loop temperature exceeds the leakage-free one.
    let dev = Mosfet::for_node(TechNode::N70).expect("calibration");
    let pkg = Package::new(
        PackagingRoadmap::for_node(TechNode::N70).required_theta_ja(),
        Celsius(45.0),
    );
    let t = pkg
        .electro_thermal_temperature(Watts(100.0), &dev, Microns(1.0e6), Volts(0.9))
        .expect("stable");
    assert!(t > pkg.junction_temperature(Watts(100.0)));
    assert!(t.0 < 120.0);
}

#[test]
fn dtm_turns_a_virus_safe_but_costs_throughput() {
    let node = TechNode::N70;
    let p_max = node.params().max_power;
    let pkg_roadmap = PackagingRoadmap::for_node(node);
    // Package sized for only 75% of the virus.
    let theta = Package::required_theta_ja(
        p_max * 0.75,
        pkg_roadmap.t_junction_max,
        pkg_roadmap.t_ambient,
    );
    let rc = ThermalRc::new(
        Package::new(theta, pkg_roadmap.t_ambient),
        DEFAULT_HEAT_CAPACITY_J_PER_C,
    );
    let virus = WorkloadTrace::power_virus(p_max, 60_000, Seconds(1e-4));
    let policy = DtmPolicy::at_trigger(pkg_roadmap.t_junction_max);
    let r = simulate(rc, &virus, &policy).expect("simulation");
    assert!(r.max_temperature <= pkg_roadmap.t_junction_max + Celsius(2.0));
    assert!(r.performance < 0.95, "the virus must be throttled");
    assert!(r.mean_power < p_max);
}

#[test]
fn cooling_cost_anchors() {
    // The 65 -> 75 W tripling and the $1/W refrigeration regime.
    let c65 = cooling_cost_dollars(Watts(65.0));
    let c75 = cooling_cost_dollars(Watts(75.0));
    assert!((c75 / c65 - 3.0).abs() < 0.05);
    assert!(cooling_cost_dollars(Watts(180.0)) >= 180.0);
}

#[test]
fn effective_worst_case_traces_average_75_percent() {
    let mut ratios = Vec::new();
    for seed in 0..6u64 {
        let trace = WorkloadTrace::application(Watts(100.0), 0.75, 20_000, Seconds(1e-4), seed);
        ratios.push(trace.effective_worst_case(Seconds(0.05)).0 / 100.0);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (0.68..=0.80).contains(&mean),
        "mean effective fraction {mean:.2}"
    );
}
