//! Integration: the Fig. 5 grid study end-to-end, with the analytic model
//! cross-validated by the mesh solver.

use nanopower::grid::analytic::{required_rail_width, worst_case_drop, IrBudget};
use nanopower::grid::mesh::mesh_worst_drop;
use nanopower::grid::plan::GridPlan;
use nanopower::grid::transient::WakeUpEvent;
use nanopower::roadmap::{PackagingRoadmap, TechNode};
use nanopower::units::{Microns, Seconds};

#[test]
fn min_pitch_is_manageable_itrs_is_not() {
    for node in TechNode::ALL {
        let a = GridPlan::min_pitch(node).expect("plan");
        assert!(a.is_routable(), "{node} min-pitch must route");
        assert!(
            a.width_over_min() < 40.0,
            "{node}: {:.0}x",
            a.width_over_min()
        );
        assert!(a.total_routing_fraction() < 0.25);
    }
    let itrs35 = GridPlan::itrs_pads(TechNode::N35).expect("plan");
    assert!(!itrs35.is_routable());
    assert!(itrs35.width_over_min() > 500.0);
}

#[test]
fn analytic_model_tracks_the_field_solver() {
    for (node, pitch, width) in [
        (TechNode::N35, 80.0, 3.0),
        (TechNode::N50, 90.0, 3.0),
        (TechNode::N70, 110.0, 2.0),
        (TechNode::N100, 130.0, 1.5),
    ] {
        let ana = worst_case_drop(node, Microns(pitch), Microns(width)).expect("analytic");
        let mesh = mesh_worst_drop(node, Microns(pitch), Microns(width)).expect("mesh");
        let ratio = mesh.0 / ana.0;
        assert!(
            (0.5..=1.6).contains(&ratio),
            "{node}: mesh/analytic = {ratio:.2}"
        );
    }
}

#[test]
fn solved_widths_verified_by_mesh() {
    // The width the analytic model prescribes holds the *mesh* drop within
    // ~1.6x of the budget (the residual model disagreement).
    let node = TechNode::N35;
    let budget = IrBudget::default();
    let pitch = Microns(80.0);
    let w = required_rail_width(node, pitch, &budget).expect("width");
    let allowed = budget.per_net(node.params().vdd).expect("budget");
    let mesh = mesh_worst_drop(node, pitch, w).expect("mesh");
    assert!(
        mesh.0 <= allowed.0 * 1.6,
        "mesh drop {mesh} vs budget {allowed}"
    );
}

#[test]
fn bump_current_and_wakeup_noise_limits() {
    let node = TechNode::N35;
    let pkg = PackagingRoadmap::for_node(node);
    assert!(pkg.itrs_bumps_are_inadequate());
    let wake = WakeUpEvent::for_node(node, Seconds::from_nano(50.0));
    let (itrs, min_pitch) = wake.noise_comparison(node).expect("noise");
    assert!(itrs > min_pitch * 5.0);
}

#[test]
fn fig5_non_monotonic_tail() {
    // Footnote 9: power density falls at 35 nm, easing the requirement
    // relative to what pure wire scaling would suggest. We assert the
    // weaker, robust property: the absolute demanded width stays within a
    // small multiple between 50 and 35 nm rather than exploding.
    let p50 = GridPlan::min_pitch(TechNode::N50).expect("plan");
    let p35 = GridPlan::min_pitch(TechNode::N35).expect("plan");
    let growth = p35.demanded_width.0 / p50.demanded_width.0;
    assert!(growth < 2.0, "50->35 nm width grew {growth:.2}x");
}
