//! Integration: the extension modules (MTCMOS, SOI, DVFS, decap, CG mesh,
//! crosstalk, incremental STA, netlist IO) compose with the core models.

use nanopower::circuit::generate::{generate_netlist, NetlistSpec};
use nanopower::circuit::incremental::IncrementalSta;
use nanopower::circuit::io::{parse_netlist, write_netlist};
use nanopower::circuit::sta::TimingContext;
use nanopower::device::mtcmos::MtcmosBlock;
use nanopower::device::substrate::Substrate;
use nanopower::device::Mosfet;
use nanopower::grid::cg::solve_cg;
use nanopower::grid::decap::DecapPlan;
use nanopower::grid::solver::MeshProblem;
use nanopower::grid::transient::WakeUpEvent;
use nanopower::opt::cvs::{cluster_voltage_scale, CvsOptions};
use nanopower::roadmap::TechNode;
use nanopower::thermal::dtm::{simulate, DtmPolicy};
use nanopower::thermal::package::Package;
use nanopower::thermal::rc::{ThermalRc, DEFAULT_HEAT_CAPACITY_J_PER_C};
use nanopower::thermal::workload::WorkloadTrace;
use nanopower::units::{Celsius, Microns, Seconds, ThermalResistance, Watts};

#[test]
fn optimized_netlist_survives_io_round_trip_with_timing_intact() {
    // Optimize, serialize, reload, re-time: the reloaded design must meet
    // the same clock with the same power.
    let mut nl = generate_netlist(&NetlistSpec::small(314));
    let ctx = TimingContext::for_node(TechNode::N100).expect("ctx");
    let crit = ctx.analyze(&nl).expect("sta").critical_delay();
    let ctx = ctx.with_clock(crit * 1.3);
    let r = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).expect("cvs");
    assert!(r.timing_met);
    let text = write_netlist(&nl);
    let back = parse_netlist(&text).expect("parse");
    let timing = ctx.analyze(&back).expect("sta");
    assert!(
        timing.is_feasible(),
        "reloaded design must still meet timing"
    );
    let p_orig = nanopower::circuit::power::netlist_power(
        &nl,
        &ctx,
        0.1,
        nanopower::units::Hertz::from_giga(1.0),
    )
    .expect("power");
    let p_back = nanopower::circuit::power::netlist_power(
        &back,
        &ctx,
        0.1,
        nanopower::units::Hertz::from_giga(1.0),
    )
    .expect("power");
    assert!((p_back.total().0 / p_orig.total().0 - 1.0).abs() < 1e-6);
}

#[test]
fn incremental_sta_agrees_after_cvs() {
    let mut nl = generate_netlist(&NetlistSpec::small(315));
    let ctx = TimingContext::for_node(TechNode::N70).expect("ctx");
    let crit = ctx.analyze(&nl).expect("sta").critical_delay();
    let ctx = ctx.with_clock(crit * 1.4);
    let _ = cluster_voltage_scale(&mut nl, &ctx, &CvsOptions::default()).expect("cvs");
    // Fresh incremental engine over the optimized design must agree with
    // full STA on every arrival.
    let inc = IncrementalSta::new(&ctx, &nl);
    let full = ctx.analyze(&nl).expect("sta");
    for id in nl.ids() {
        assert!((inc.arrival_of(id).0 - full.arrival[id.index()].0).abs() < 1e-18);
    }
}

#[test]
fn sleep_mode_story_composes() {
    // MTCMOS cuts standby leakage; the resulting wake-up transient is
    // absorbed by a decap plan; the mesh drop stays in budget.
    let node = TechNode::N35;
    let logic = Mosfet::for_node(node).expect("calibration");
    let block = MtcmosBlock::new(logic, Microns(1.0e6), 0.1).expect("block");
    assert!(block.standby_reduction() > 100.0);
    // Staged wake-up over 20 µs: decap practical.
    let wake = WakeUpEvent::for_node(node, Seconds(20e-6));
    let decap = DecapPlan::size_for(node, &wake, node.params().vdd * 0.05).expect("decap");
    assert!(
        decap.is_practical(0.1),
        "{:.1}% of die",
        decap.die_fraction * 100.0
    );
}

#[test]
fn soi_device_flows_through_the_whole_stack() {
    // An FD-SOI device keeps every downstream analysis working and leaks
    // less at the same threshold.
    let bulk = Mosfet::for_node(TechNode::N70).expect("calibration");
    let soi = bulk.with_substrate(Substrate::FdSoi);
    assert!(soi.ioff() < bulk.ioff());
    let vdd = TechNode::N70.params().vdd;
    assert!((soi.ion(vdd).unwrap().0 / bulk.ion(vdd).unwrap().0 - 1.0).abs() < 1e-9);
    let block = MtcmosBlock::new(soi, Microns(1000.0), 0.1).expect("block");
    assert!(block.standby_reduction() > 100.0);
}

#[test]
fn dvfs_beats_clock_gating_on_the_same_package() {
    let theta = ThermalResistance(0.733);
    let virus = WorkloadTrace::power_virus(Watts(100.0), 40_000, Seconds(1e-4));
    let run = |policy: DtmPolicy| {
        simulate(
            ThermalRc::new(
                Package::new(theta, Celsius(45.0)),
                DEFAULT_HEAT_CAPACITY_J_PER_C,
            ),
            &virus,
            &policy,
        )
        .expect("sim")
    };
    let gating = run(DtmPolicy::at_trigger(Celsius(100.0)));
    let dvfs = run(DtmPolicy::dvfs_at_trigger(Celsius(100.0)));
    assert!(dvfs.max_temperature <= Celsius(101.5));
    assert!(dvfs.performance > gating.performance);
}

#[test]
fn both_mesh_solvers_agree_on_a_grid_problem() {
    let mut m = MeshProblem::new(15, 15, 2.0);
    let pin = m.index(7, 7);
    m.pinned[pin] = true;
    for i in 0..m.injection.len() {
        m.injection[i] = 2e-3;
    }
    let sor = m.solve().expect("sor");
    let cg = solve_cg(&m).expect("cg");
    for i in 0..sor.len() {
        assert!((sor[i] - cg[i]).abs() < 1e-6, "node {i}");
    }
}

#[test]
fn crosstalk_window_respects_low_swing_margins() {
    use nanopower::interconnect::crosstalk::{delay_window, NeighbourState};
    use nanopower::interconnect::elmore::RcLine;
    use nanopower::interconnect::wire::WireGeometry;
    let line = RcLine::new(WireGeometry::top_level(TechNode::N50), Microns(5_000.0)).unwrap();
    let dense = delay_window(
        &line,
        nanopower::units::Ohms(500.0),
        nanopower::units::Farads::from_femto(20.0),
        NeighbourState::BothLive,
    )
    .unwrap();
    let shielded = delay_window(
        &line,
        nanopower::units::Ohms(500.0),
        nanopower::units::Farads::from_femto(20.0),
        NeighbourState::FullyShielded,
    )
    .unwrap();
    assert!(dense.uncertainty() > 10.0 * (shielded.uncertainty() + 1e-12));
}
