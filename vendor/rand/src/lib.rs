//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates-io mirror, so
//! the workspace vendors the *subset* of the rand 0.9 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_range`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed on every platform, which is
//! all the repo's seeded netlist/workload generators require. It is **not**
//! the same stream as upstream `StdRng` (ChaCha12) and is not
//! cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A random-number generator seedable from a `u64`, as in rand 0.9.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait: raw words plus the two sampling
/// helpers the workspace calls.
pub trait Rng {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// A value sampled from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value sampled uniformly from `range` (half-open, as in rand 0.9).
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types with a uniform-range sampler, as in rand 0.9.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[lo, hi)`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value uniformly from the range.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_uniform(rng, self.start, self.end)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// SplitMix64: used for key expansion, exactly as the xoshiro authors
/// recommend for seeding from a single word.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Deterministic per seed; not the
    /// upstream ChaCha12 stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let i = rng.random_range(0..4usize);
            seen[i] = true;
            let f = rng.random_range(0.9..1.0f64);
            assert!((0.9..1.0).contains(&f));
            let n = rng.random_range(20..200i64);
            assert!((20..200).contains(&n));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
