//! A tiny regex-shaped string generator backing the `"..."` strategies.
//!
//! Supports the subset the workspace's property tests use: literal
//! characters, `.` (any printable ASCII), character classes `[...]` with
//! ranges and literal `-`/leading `^`-less members, `\x` escapes, and
//! `{m}` / `{m,n}` repetition counts on the preceding atom. Everything
//! else is treated as a literal character.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    /// Any printable ASCII character (0x20..=0x7E), the `.` class.
    Any,
    /// One character drawn from an explicit set.
    Class(Vec<char>),
    /// A fixed character.
    Literal(char),
}

impl Atom {
    fn emit(&self, rng: &mut StdRng, out: &mut String) {
        match self {
            Atom::Any => {
                let c = rng.random_range(0x20u32..0x7F);
                out.push(char::from_u32(c).expect("printable ascii"));
            }
            Atom::Class(set) => out.push(set[rng.random_range(0..set.len())]),
            Atom::Literal(c) => out.push(*c),
        }
    }
}

/// Generates one string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (lo, hi, next) = parse_repeat(&chars, i);
        i = next;
        let count = if lo == hi {
            lo
        } else {
            rng.random_range(lo..hi + 1)
        };
        for _ in 0..count {
            atom.emit(rng, &mut out);
        }
    }
    out
}

/// Parses the members of a `[...]` class starting just past the `[`;
/// returns the expanded set and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if chars[i] == '\\' && i + 1 < chars.len() {
            set.push(chars[i + 1]);
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    set.push(c);
                }
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in strategy pattern");
    (set, i + 1)
}

/// Parses an optional `{m}` / `{m,n}` repetition at `i`; returns
/// `(min, max, next_index)` with `(1, 1, i)` when absent.
fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = match chars[i..].iter().position(|&c| c == '}') {
        Some(off) => i + off,
        None => return (1, 1, i),
    };
    let body: String = chars[i + 1..close].iter().collect();
    let parsed = match body.split_once(',') {
        Some((lo, hi)) => lo
            .trim()
            .parse()
            .and_then(|lo| hi.trim().parse().map(|hi| (lo, hi))),
        None => body.trim().parse().map(|n| (n, n)),
    };
    match parsed {
        Ok((lo, hi)) if lo <= hi => (lo, hi, close + 1),
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn bounded_any_repetition() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_matching(".{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn classes_and_ranges() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_matching("[A-Z]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
            let t = generate_matching("[a-z_]{1,8}=[-0-9a-z.]{1,8}", &mut rng);
            let (lhs, rhs) = t.split_once('=').expect("literal equals sign");
            assert!(!lhs.is_empty() && !rhs.is_empty());
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = rng();
        assert_eq!(generate_matching("gate g7", &mut rng), "gate g7");
    }
}
