//! Sampling strategies: `select`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A strategy drawing uniformly from a fixed list of values.
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

/// Builds a [`Select`], mirroring `proptest::sample::select`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.items[rng.random_range(0..self.items.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_all_items() {
        let strat = select(vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
