//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the proptest 1.x API its property tests use: the
//! [`proptest!`] macro (with the `#![proptest_config(...)]` header),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and regex-literal
//! strategies, [`collection::vec`], and [`sample::select`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Failing cases report the generated inputs via the
//! assertion message and the deterministic per-test seed, which is enough
//! to reproduce (case indices map to fixed RNG streams derived from the
//! fully-qualified test name).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    /// The crate root under its conventional short alias, so
    /// `prop::sample::select(...)` etc. resolve.
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion target of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        runner.cases(),
                        err
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the enclosing property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
