//! The [`Strategy`] trait and the range strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A generator of test-case inputs, mirroring `proptest::strategy::Strategy`
/// minus shrinking: `generate` draws one value from the deterministic
/// per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

/// String-literal strategies: the pattern is interpreted as a regex (the
/// subset [`crate::string`] supports) and generates matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
