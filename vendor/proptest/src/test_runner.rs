//! Deterministic case scheduling: per-test seeds, case RNG streams, and
//! the error type `prop_assert!` produces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Subset of `proptest::test_runner::Config`: the number of cases to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Generated input cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property case (no shrinking in this stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Schedules the deterministic RNG stream for each case of one property.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: Config,
    seed: u64,
}

impl TestRunner {
    /// A runner for the named property; the name (use the fully-qualified
    /// `module_path!()::name`) fixes the seed so runs are reproducible.
    pub fn new(config: Config, name: &str) -> Self {
        TestRunner {
            config,
            seed: fnv1a(name.as_bytes()),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG driving `case`'s input generation.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let a = TestRunner::new(Config::default(), "x::y");
        let b = TestRunner::new(Config::default(), "x::y");
        assert_eq!(a.rng_for_case(3).next_u64(), b.rng_for_case(3).next_u64());
        assert_ne!(a.rng_for_case(3).next_u64(), a.rng_for_case(4).next_u64());
    }
}
