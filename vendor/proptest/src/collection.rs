//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A strategy producing `Vec`s of `element` values with a length drawn
/// from `sizes`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    sizes: Range<usize>,
}

/// Builds a [`VecStrategy`], mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(
        sizes.start < sizes.end,
        "empty size range in collection::vec"
    );
    VecStrategy { element, sizes }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.sizes.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_respect_ranges() {
        let strat = vec(-100.0..100.0f64, 1..40);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|x| (-100.0..100.0).contains(x)));
        }
    }
}
