//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *subset* of the criterion 0.8 API its benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`/`measurement_time`, [`BenchmarkGroup::bench_function`],
//! and [`Bencher::iter`]. Instead of criterion's statistical analysis it
//! runs a warm-up iteration plus `sample_size` timed iterations and
//! prints the mean wall-clock per iteration — enough to eyeball perf
//! trends; not a substitute for real criterion statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` call sites; `std`'s hint is
/// the real implementation on modern toolchains.
pub use std::hint::black_box;

/// One completed measurement: what [`Bencher::iter`] observed for a
/// named benchmark. Collected on the driving [`Criterion`] so harnesses
/// can emit machine-readable reports instead of scraping stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The benchmark's (group-qualified, as printed) name.
    pub name: String,
    /// Mean wall-clock per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub iterations: u64,
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            sample_size,
        }
    }

    /// Times a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let record = run_one(&name.to_string(), self.sample_size, f);
        self.records.extend(record);
        self
    }

    /// Every measurement taken through this driver, in execution order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stand-in times a fixed
    /// iteration count rather than a target duration.
    pub fn measurement_time(&mut self, _target: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let record = run_one(&name.to_string(), self.sample_size, f);
        self.criterion.records.extend(record);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` once to warm up, then `sample_size` timed times,
    /// accumulating wall-clock.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iterations += self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    mut f: F,
) -> Option<BenchRecord> {
    let mut bencher = Bencher {
        samples: sample_size,
        ..Bencher::default()
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let per_iter = bencher.total / bencher.iterations as u32;
        println!(
            "  {name:40} {per_iter:>12.2?}/iter ({} iters)",
            bencher.iterations
        );
        Some(BenchRecord {
            name: name.to_string(),
            mean_ns: bencher.total.as_nanos() as f64 / bencher.iterations as f64,
            iterations: bencher.iterations,
        })
    } else {
        println!("  {name:40} (no measurements)");
        None
    }
}

/// Declares `fn $name()` running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_finish() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3).measurement_time(Duration::from_millis(1));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // one warm-up + three timed samples
        assert_eq!(ran, 4);
        let records = c.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "count");
        assert_eq!(records[0].iterations, 3);
        assert!(records[0].mean_ns >= 0.0);
    }

    #[test]
    fn top_level_bench_records_too() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].name, "direct");
        assert_eq!(c.records()[0].iterations, 10);
    }
}
