//! A desktop-MPU power and thermal budget across the roadmap: the
//! Section 2.1 / 3.1 story — static power blowing through the ITRS 10 %
//! allowance, and DTM buying packaging headroom.
//!
//! Run with: `cargo run --example mpu_power_budget`

use nanopower::chip::Chip;
use nanopower::roadmap::TechNode;

fn main() -> Result<(), nanopower::Error> {
    println!("MPU power budgets along the ITRS roadmap\n");
    for node in TechNode::ALL {
        let chip = Chip::at_node(node);
        let budget = chip.power_budget()?;
        println!("{budget}");
    }

    println!("\nThermal closure with dynamic thermal management (nanometer nodes):\n");
    for node in TechNode::NANOMETER {
        let chip = Chip::at_node(node);
        let closure = chip.thermal_closure()?;
        println!("{closure}");
    }

    println!(
        "\nReading: the package sized for the 75% effective worst case is a\n\
         third cheaper in θja terms, and the DTM simulation confirms it runs\n\
         realistic workloads essentially unthrottled."
    );
    Ok(())
}
