//! The Section 3.2 standby-leakage toolbox in one place: MTCMOS,
//! reverse body bias, stacks, dual-Vth, FD-SOI — and why the paper calls
//! dual-Vth "the only technique used in current high-end MPUs".
//!
//! Run with: `cargo run --example leakage_control`

use nanopower::device::mtcmos::MtcmosBlock;
use nanopower::device::stack::SubthresholdStack;
use nanopower::device::substrate::{BodyBias, Substrate};
use nanopower::device::Mosfet;
use nanopower::roadmap::TechNode;
use nanopower::units::{Microns, Volts};

fn main() -> Result<(), nanopower::Error> {
    let node = TechNode::N70;
    let dev = Mosfet::for_node(node)?;
    let vdd = node.params().vdd;
    println!(
        "Leakage control at {node} (baseline Ioff {:.0} nA/µm):\n",
        dev.ioff().as_nano_per_micron()
    );

    let mtcmos = MtcmosBlock::new(dev.clone(), Microns(10_000.0), 0.1)?;
    println!("{mtcmos}");
    println!(
        "  active-mode delay cost {:.1}%, but zero active-mode leakage saving\n",
        mtcmos.delay_penalty(vdd)? * 100.0
    );

    let stack = SubthresholdStack::uniform(&dev, 2);
    println!(
        "Two-transistor stack: leakage /{:.1} in *both* modes (state-dependent)",
        stack.suppression_factor(vdd)?
    );

    let high = dev.with_vth(dev.vth + Volts(0.1));
    println!(
        "Dual-Vth (+100 mV implant): leakage /{:.0}, no area cost — the\n\
         technique the paper expects to carry high-end MPUs",
        dev.ioff() / high.ioff()
    );

    let soi = dev.with_substrate(Substrate::FdSoi);
    println!(
        "FD-SOI (20% steeper swing): leakage /{:.1} at the same Vth, or\n\
         {:.0} mV of threshold headroom at equal leakage",
        dev.ioff() / soi.ioff(),
        Substrate::FdSoi.vth_headroom(dev.vth).as_milli()
    );

    println!("\nBody bias authority across the roadmap (the non-scaling knob):");
    for n in TechNode::ALL {
        let b = BodyBias::for_node(n);
        println!(
            "  {n}: γ_eff {:.2} V/V -> standby /{:.0} at full reverse bias",
            b.gamma_eff,
            b.standby_leakage_reduction(dev.subthreshold_swing())
        );
    }
    Ok(())
}
