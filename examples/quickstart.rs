//! Quickstart: calibrate a device at every ITRS node and print the
//! headline numbers of the paper's Table 2 analysis.
//!
//! Run with: `cargo run --example quickstart`

use nanopower::device::delay::fo4_delay;
use nanopower::device::Mosfet;
use nanopower::report::TextTable;
use nanopower::roadmap::TechNode;

fn main() -> Result<(), nanopower::Error> {
    println!("nanopower quickstart — compact-model snapshot per ITRS node\n");
    let mut table = TextTable::new(&[
        "node",
        "Vdd (V)",
        "Vth (V)",
        "Ion (uA/um)",
        "Ioff (nA/um)",
        "FO4 (ps)",
    ]);
    for node in TechNode::ALL {
        let p = node.params();
        // Vth is solved so that Ion meets the ITRS 750 uA/um target.
        let dev = Mosfet::for_node(node)?;
        let ion = dev.ion(p.vdd)?;
        let fo4 = fo4_delay(&dev, p.vdd)?;
        table.row(&[
            &format!("{node}"),
            &format!("{:.2}", p.vdd.0),
            &format!("{:.3}", dev.vth.0),
            &format!("{:.0}", ion.0),
            &format!("{:.1}", dev.ioff().as_nano_per_micron()),
            &format!("{:.1}", fo4.as_pico()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The 50 nm row shows the paper's warning: holding 750 uA/um at 0.6 V\n\
         forces Vth to near zero and leakage to microamps per micron."
    );
    Ok(())
}
