//! The Section 3.3 layered power flow on a synthetic netlist: clustered
//! voltage scaling, then re-sizing, then dual-Vth selection.
//!
//! Run with: `cargo run --example multi_vdd_optimization`

use nanopower::circuit::generate::{generate_netlist, NetlistSpec};
use nanopower::circuit::sta::TimingContext;
use nanopower::opt::combined::{optimize, CombinedOptions};
use nanopower::roadmap::TechNode;

fn main() -> Result<(), nanopower::Error> {
    let node = TechNode::N70;
    let mut netlist = generate_netlist(&NetlistSpec::medium(2001));
    println!(
        "Synthetic netlist: {} gates at {node}; clock relaxed 30% over critical.\n",
        netlist.len()
    );
    let ctx = TimingContext::for_node(node)?;
    let critical = ctx.analyze(&netlist)?.critical_delay();
    let ctx = ctx.with_clock(critical * 1.3);

    let result = optimize(&mut netlist, &ctx, &CombinedOptions::default())?;

    println!(
        "Stage 1 — CVS: {:.0}% of gates on Vdd,l ({} level converters), dynamic -{:.0}%",
        result.cvs.fraction_low * 100.0,
        result.cvs.converters,
        result.cvs.dynamic_saving() * 100.0
    );
    if let Some(sizing) = &result.sizing {
        println!(
            "Stage 2 — sizing: {} gates downsized, further dynamic -{:.0}%",
            sizing.resized_count,
            sizing.dynamic_saving() * 100.0
        );
    }
    if let Some(dv) = &result.dual_vth {
        println!(
            "Stage 3 — dual-Vth: {:.0}% of gates on high Vth, leakage -{:.0}%",
            dv.fraction_high * 100.0,
            dv.leakage_saving() * 100.0
        );
    }
    println!("\n{result}");
    let timing = ctx.analyze(&netlist)?;
    println!(
        "Final timing: worst slack {:.1} ps against a {:.1} ps clock — {}",
        timing.worst_slack().as_pico(),
        timing.clock.as_pico(),
        if timing.is_feasible() {
            "met"
        } else {
            "VIOLATED"
        }
    );
    Ok(())
}
