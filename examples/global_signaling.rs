//! Section 2.2: the repeater explosion on scaled top-level wiring, and
//! what differential low-swing signaling buys back.
//!
//! Run with: `cargo run --example global_signaling`

use nanopower::device::Mosfet;
use nanopower::interconnect::chip::global_signaling_report;
use nanopower::interconnect::elmore::RcLine;
use nanopower::interconnect::repeater::{insert_repeaters, DriverTech};
use nanopower::interconnect::wire::WireGeometry;
use nanopower::roadmap::TechNode;
use nanopower::units::Microns;

fn main() -> Result<(), nanopower::Error> {
    println!("Global signaling along the roadmap:\n");
    for node in TechNode::ALL {
        println!("{}", global_signaling_report(node)?);
    }

    // Zoom in on one cross-chip wire at 50 nm.
    let node = TechNode::N50;
    let p = node.params();
    let dev = Mosfet::for_node(node)?;
    let tech = DriverTech::from_device(&dev, p.vdd)?;
    let line = RcLine::new(WireGeometry::top_level(node), Microns(20_000.0))?;
    let design = insert_repeaters(&line, &tech)?;
    println!(
        "\nOne 2 cm wire at {node}: unbuffered {:.2} ns; {} repeaters of {:.0} um\n\
         every {:.0} um bring it to {:.2} ns.",
        line.intrinsic_delay().as_nano(),
        design.count,
        design.width.0,
        design.spacing.0,
        design.total_delay.as_nano(),
    );
    println!(
        "\nReading: repeated full-swing signaling costs tens of watts by 50 nm;\n\
         low-swing differential links recover an order of magnitude at a\n\
         sub-2x routing-area premium."
    );
    Ok(())
}
