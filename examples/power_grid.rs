//! Section 4: sizing the top-level power grid for a <10% IR drop, under
//! the minimum attainable bump pitch versus the ITRS pad-count
//! projections, cross-checked with the resistive-mesh solver.
//!
//! Run with: `cargo run --example power_grid`

use nanopower::grid::analytic::worst_case_drop;
use nanopower::grid::mesh::mesh_worst_drop;
use nanopower::grid::plan::GridPlan;
use nanopower::grid::transient::WakeUpEvent;
use nanopower::roadmap::TechNode;
use nanopower::units::{Microns, Seconds};

fn main() -> Result<(), nanopower::Error> {
    println!("Top-level power-grid plans (Fig. 5):\n");
    for node in TechNode::ALL {
        println!("{}", GridPlan::min_pitch(node)?);
        println!("{}", GridPlan::itrs_pads(node)?);
    }

    // Validate the analytic model against the field solver at 35 nm.
    let node = TechNode::N35;
    let pitch = Microns(80.0);
    let width = Microns(4.0);
    let analytic = worst_case_drop(node, pitch, width)?;
    let mesh = mesh_worst_drop(node, pitch, width)?;
    println!(
        "\nCross-check at {node}, 80 um pitch, 4 um rails:\n\
         analytic {:.1} mV vs mesh solver {:.1} mV",
        analytic.as_milli(),
        mesh.as_milli()
    );

    // Sleep-exit transients.
    let wake = WakeUpEvent::for_node(node, Seconds::from_nano(100.0));
    let (itrs, min_pitch) = wake.noise_comparison(node)?;
    println!(
        "\nWake-up from standby (100 ns ramp) at {node}:\n\
         {:.1} mV inductive noise with ITRS bumps, {:.2} mV at minimum pitch.",
        itrs.as_milli(),
        min_pitch.as_milli()
    );
    println!(
        "\nReading: IR drop is manageable if bump provisioning tracks the\n\
         technology (16-ish x minimum rails, a few percent of routing); under\n\
         ITRS pad counts the required rails are unroutable."
    );
    Ok(())
}
