#!/usr/bin/env bash
# CI chaos-serve: drive the nanopowerd daemon through the seeded
# socket-level fault-injection proxy and prove it degrades instead of
# dying.
#
#   1. Run the deterministic chaos integration suite (torn frames,
#      slowloris, garbage floods, kill -9 + spill rehydration, typed
#      overload shedding) against the real binary.
#   2. Start a daemon, put the hidden `chaos-proxy` subcommand in front
#      of it with a FIXED seed, and push the load client through the
#      proxy. Client-side errors are expected weather; the assertions
#      are daemon-side.
#   3. Assert the daemon never panicked, still answers `health` with
#      ready=true, and serves a clean direct load run with zero errors
#      afterwards.
set -euo pipefail
cd "$(dirname "$0")/.."

# Faults are drawn from this seed alone: a failing run replays exactly.
CHAOS_SEED=3735928559

echo "== 1. deterministic chaos integration suite =="
cargo test --release -p np-bench --test chaos

cargo build --release -p np-bench --bin nanopowerd
DAEMON=target/release/nanopowerd
WORK="$(mktemp -d)"
SOCK="$WORK/nanopowerd.sock"
PROXY="$WORK/chaos.sock"
daemon_pid=""
proxy_pid=""
cleanup() {
    [ -n "$proxy_pid" ] && kill "$proxy_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 2. seeded fault-injection proxy in front of the daemon =="
"$DAEMON" serve --socket "$SOCK" --max-inflight 2 --queue-depth 32 \
    2> "$WORK/daemon.err" &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon never opened $SOCK"; cat "$WORK/daemon.err"; exit 1; }

"$DAEMON" chaos-proxy --listen "$PROXY" --upstream "$SOCK" \
    --seed "$CHAOS_SEED" 2> "$WORK/proxy.err" &
proxy_pid=$!
for _ in $(seq 1 100); do
    [ -S "$PROXY" ] && break
    sleep 0.1
done
[ -S "$PROXY" ] || { echo "proxy never opened $PROXY"; cat "$WORK/proxy.err"; exit 1; }

# Through the proxy, torn frames and garbage floods make the CLIENT see
# errors — a nonzero exit here is the point of the exercise.
"$DAEMON" load --socket "$PROXY" --quick --out "$WORK/BENCH_chaos.json" \
    | tee "$WORK/chaos-load.txt" || true

echo "== 3. daemon survived: no panics, ready, clean service =="
if grep -qi "panic" "$WORK/daemon.err"; then
    echo "daemon panicked under chaos:"; cat "$WORK/daemon.err"; exit 1
fi
kill -0 "$daemon_pid" 2>/dev/null || { echo "daemon died under chaos"; exit 1; }
"$DAEMON" health --socket "$SOCK" | tee "$WORK/health.json"
python3 - "$WORK/health.json" <<'EOF'
import json, sys
health = json.load(open(sys.argv[1]))["health"]
assert health["ready"] is True, health
assert health["inflight"] == 0, health
EOF
"$DAEMON" load --socket "$SOCK" --quick --out "$WORK/BENCH_after.json" \
    | tee "$WORK/after.txt"
grep -qE ' 0 errors' "$WORK/after.txt" \
    || { echo "daemon degraded after chaos"; exit 1; }
"$DAEMON" shutdown --socket "$SOCK" > /dev/null
wait "$daemon_pid" || { echo "daemon exited nonzero"; exit 1; }
daemon_pid=""

echo "chaos-serve: all checks passed (seed $CHAOS_SEED)"
