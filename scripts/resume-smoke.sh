#!/usr/bin/env bash
# CI resume-smoke: prove the resilience layer end to end through the
# real binary.
#
#   1. SIGINT drain — interrupt a run with a guaranteed in-flight job
#      (--chaos hang) and assert the graceful-cancellation contract:
#      nonzero exit, "interrupted": true, a flushed journal.
#   2. Kill-resume losslessness — cut a journal mid-entry (what a
#      SIGKILL mid-write leaves behind) and assert --resume reproduces
#      the uninterrupted run's stdout byte-for-byte and a matching
#      artifact set in the combined --json report.
#   3. SIGINT-resume — interrupt a real journaled run (best effort; the
#      full run takes milliseconds, so the signal may lose the race)
#      and assert --resume converges to the clean output either way.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p np-bench --bin repro
REPRO=target/release/repro
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== reference run =="
"$REPRO" --jobs 1 > "$WORK/clean.txt"
"$REPRO" --jobs 1 --json | grep -o '"artifact": "[a-z0-9-]*", "status": "[a-z]*"' \
    | sort > "$WORK/clean-artifacts.txt"

echo "== 1. SIGINT drains a run with an in-flight job =="
"$REPRO" --chaos --journal "$WORK/chaos.jsonl" --timeout-secs 5 --jobs 1 --json \
    > "$WORK/chaos.json" 2> "$WORK/chaos.err" &
pid=$!
sleep 1
kill -INT "$pid"
if wait "$pid"; then
    echo "interrupted chaos run must exit nonzero"; exit 1
fi
grep -qF '"interrupted": true' "$WORK/chaos.json" \
    || { echo "report not marked interrupted"; cat "$WORK/chaos.json"; exit 1; }
[ "$(wc -l < "$WORK/chaos.jsonl")" -ge 2 ] \
    || { echo "journal was not flushed during the drain"; exit 1; }
grep -qF '"status": "cancelled"' "$WORK/chaos.json" \
    || { echo "unstarted jobs must be recorded as cancelled"; exit 1; }

echo "== 2. resume from a journal cut mid-entry is lossless =="
"$REPRO" --journal "$WORK/run.jsonl" --jobs 1 > "$WORK/journaled.txt"
cmp "$WORK/journaled.txt" "$WORK/clean.txt"
full_bytes=$(stat -c %s "$WORK/run.jsonl" 2>/dev/null || stat -f %z "$WORK/run.jsonl")
head -c "$((full_bytes / 2))" "$WORK/run.jsonl" > "$WORK/torn.jsonl"
"$REPRO" --resume "$WORK/torn.jsonl" --jobs 4 > "$WORK/resumed.txt"
cmp "$WORK/resumed.txt" "$WORK/clean.txt"
"$REPRO" --resume "$WORK/torn.jsonl" --json \
    | grep -o '"artifact": "[a-z0-9-]*", "status": "[a-z]*"' \
    | sort > "$WORK/resumed-artifacts.txt"
cmp "$WORK/resumed-artifacts.txt" "$WORK/clean-artifacts.txt"

echo "== 3. SIGINT a real journaled run, then resume =="
caught=no
for _ in 1 2 3 4 5 6 7 8 9 10; do
    rm -f "$WORK/int.jsonl"
    # trap - EXIT + exec: the forked child must not inherit this script's
    # cleanup trap — a SIGINT landing before exec would otherwise run it
    # and delete $WORK out from under the remaining checks.
    { trap - EXIT; exec "$REPRO" --journal "$WORK/int.jsonl" --jobs 2 --json \
        > "$WORK/int.json" 2>/dev/null; } &
    pid=$!
    sleep 0.005
    kill -INT "$pid" 2>/dev/null || true
    wait "$pid" || true
    if grep -qF '"interrupted": true' "$WORK/int.json"; then
        caught=yes
        break
    fi
done
echo "mid-run interrupt caught: $caught (run may be too fast to race)"
if [ ! -s "$WORK/int.jsonl" ]; then
    # The signal beat even the journal header write; re-journal so the
    # resume below still exercises the replay path.
    "$REPRO" --journal "$WORK/int.jsonl" --jobs 2 > /dev/null
fi
"$REPRO" --resume "$WORK/int.jsonl" --jobs 4 > "$WORK/int-resumed.txt"
cmp "$WORK/int-resumed.txt" "$WORK/clean.txt"

echo "resume-smoke: all checks passed"
