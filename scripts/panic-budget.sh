#!/usr/bin/env bash
# Panic-site budget: the number of potential panic sites in the model and
# harness sources may only go down, never up.
#
# The hardening PR converted every non-test `unwrap`/`expect` in the
# library crates to typed errors and locked the door behind it with
# `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]`.
# That lint only covers non-test code in library crates, so this check
# adds a second, cruder fence around *everything* under `crates/*/src`
# (tests, binaries, macros included): a plain token count of `unwrap(`,
# `expect(`, and `panic!`. New code that needs one of these must retire
# one elsewhere — or justify raising the baseline in this script.
#
# Usage: scripts/panic-budget.sh [--update]
#   --update  print the current count in baseline format and exit 0
set -euo pipefail
cd "$(dirname "$0")/.."

# Post-hardening baseline (see git history of this file).
# Raised 420 -> 623: the service/journal/multigrid/optimizer PRs grew
# the in-crate *test* suites substantially (expect( in #[cfg(test)]
# modules and tests/, which this crude fence counts on purpose), and
# the figure binaries assert on their own rendered artifacts. Non-test
# library code is still held to zero unwrap/expect by
# `deny(clippy::unwrap_used, clippy::expect_used)` in every crate.
BASELINE=623

count=$(grep -rEo 'unwrap\(|expect\(|panic!' crates/*/src --include='*.rs' | wc -l)

if [[ "${1:-}" == "--update" ]]; then
    echo "BASELINE=$count"
    exit 0
fi

echo "panic-site tokens in crates/*/src: $count (budget: $BASELINE)"
if (( count > BASELINE )); then
    echo "error: panic-site count grew past the budget." >&2
    echo "Convert the new unwrap/expect/panic to a typed error, or" >&2
    echo "justify raising BASELINE in scripts/panic-budget.sh." >&2
    echo >&2
    echo "Top offenders:" >&2
    grep -rEo 'unwrap\(|expect\(|panic!' crates/*/src --include='*.rs' \
        | cut -d: -f1 | sort | uniq -c | sort -rn | head -10 >&2
    exit 1
fi
