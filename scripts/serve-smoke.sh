#!/usr/bin/env bash
# CI serve-smoke: prove the nanopowerd service end to end through the
# real binaries.
#
#   1. Start the daemon on a temp unix socket and drive it with the
#      bundled load client (default: 4 connections x 25 requests = 100
#      concurrent requests; --quick shrinks it for the bench-smoke
#      ride-along).
#   2. Assert the load run completed with zero errors, that repeats hit
#      the cross-request artifact memo, and that BENCH_serve.json
#      parses and carries the nanopower-bench/v1 schema.
#   3. Drive the untrusted scenario-spec pipeline over the raw
#      protocol: a valid spec renders under its digest name, the same
#      scenario with reordered keys memo-hits, and out-of-range,
#      unknown-key, over-budget, and typo'd-key requests each draw
#      their typed rejection with the connection surviving.
#   4. Assert the daemon's lifetime counters are consistent (served ==
#      accepted, exactly the typed rejections the spec leg provoked)
#      and that a shutdown request stops the process cleanly.
#   5. Crash recovery: run a spill-backed daemon, kill -9 it mid-life,
#      restart on the same (now stale) socket and the same spill file,
#      and assert the memo rehydrates BEFORE any request is served.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK_FLAG=""
if [ "${1:-}" = "--quick" ]; then
    QUICK_FLAG="--quick"
fi

cargo build --release -p np-bench --bin nanopowerd
DAEMON=target/release/nanopowerd
WORK="$(mktemp -d)"
SOCK="$WORK/nanopowerd.sock"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== 1. daemon up, load client through it =="
"$DAEMON" serve --socket "$SOCK" --max-inflight 2 --queue-depth 32 \
    2> "$WORK/daemon.err" &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon never opened $SOCK"; cat "$WORK/daemon.err"; exit 1; }

"$DAEMON" load --socket "$SOCK" $QUICK_FLAG --out "$WORK/BENCH_serve.json" \
    | tee "$WORK/load.txt"

echo "== 2. report and memo checks =="
grep -qE ' 0 errors' "$WORK/load.txt" \
    || { echo "load run saw errors"; exit 1; }
grep -qE ' [1-9][0-9]* memo hits' "$WORK/load.txt" \
    || { echo "repeated requests must hit the artifact memo"; exit 1; }
python3 -m json.tool "$WORK/BENCH_serve.json" > /dev/null
grep -qF '"schema": "nanopower-bench/v1"' "$WORK/BENCH_serve.json"
grep -qF '"name": "serve.p99"' "$WORK/BENCH_serve.json"

echo "== 3. scenario specs: render, memoize, reject typed =="
python3 - "$SOCK" <<'EOF'
import json, socket, sys

sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect(sys.argv[1])
rfile = sock.makefile("r")

def send(obj):
    sock.sendall((json.dumps(obj) + "\n").encode())

def recv():
    return json.loads(rfile.readline())

hello = recv()
assert hello["hello"] == "nanopowerd/v1", hello

# A valid spec renders through the builder path under a digest name.
send({"run": {"specs": [{"node": 70, "activity": 0.2, "grid": {"resolution": 9}}]}})
record = recv()["record"]
assert record["status"] == "ok" and record["name"].startswith("spec:"), record
report = recv()["report"]
assert report["ok"] == 1 and report["failures"] == 0, report
first = (record["name"], record["digest"])

# The same scenario with reordered keys and explicit defaults is the
# same canonical spec: memo hit, identical digest, no re-execution.
send({"run": {"specs": [{"grid": {"resolution": 9}, "workload_ratio": 1,
                         "activity": 0.2, "node": 70}]}})
record = recv()["record"]
assert record["memo"] is True, record
assert (record["name"], record["digest"]) == first, (record, first)
recv()

# Out-of-range and unknown-key specs draw typed invalid_spec errors
# naming the field; the connection survives every one.
send({"run": {"specs": [{"node": 70, "activity": 42}]}})
err = recv()["error"]
assert err["kind"] == "invalid_spec" and err["field"] == "activity", err
send({"run": {"specs": [{"node": 70, "nodee": 1}]}})
err = recv()["error"]
assert err["kind"] == "invalid_spec" and err["field"] == "nodee", err

# A spec over the cost budget is refused before any work runs.
send({"run": {"specs": [{"node": 70, "netlist": {"cells": 10000000}}]}})
expensive = recv()["too_expensive"]
assert expensive["estimate"] > expensive["budget"], expensive

# A typo'd run key is a typed protocol error, not a silent default.
send({"run": {"names": ["fig5"], "deadlne_ms": 5}})
err = recv()["error"]
assert err["kind"] == "protocol" and "deadlne_ms" in err["reason"], err

sock.close()
print("spec leg: render + memo + typed rejections OK")
EOF

echo "== 4. counters consistent, shutdown clean =="
"$DAEMON" stats --socket "$SOCK" | tee "$WORK/stats.json"
python3 - "$WORK/stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))["stats"]
assert stats["served"] == stats["accepted"], stats
assert stats["served"] > 0, stats
assert stats["memo_hits"] > 0, stats
# The spec leg deliberately drew exactly one typo'd-key protocol error,
# two invalid specs, and one over-budget refusal -- all typed, none
# fatal, and nothing was quarantined.
assert stats["protocol_errors"] == 1, stats
assert stats["invalid_specs"] == 2, stats
assert stats["too_expensive"] == 1, stats
assert stats["panicked"] == 0 and stats["quarantined"] == 0, stats
EOF
"$DAEMON" shutdown --socket "$SOCK" > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "daemon ignored shutdown"; exit 1
fi
wait "$daemon_pid" || { echo "daemon exited nonzero"; exit 1; }
daemon_pid=""

echo "== 5. kill -9 a spill-backed daemon, restart, memo rehydrates =="
SPILL="$WORK/memo.spill"
"$DAEMON" serve --socket "$SOCK" --memo-spill "$SPILL" 2> "$WORK/daemon2.err" &
daemon_pid=$!
for _ in $(seq 1 100); do
    "$DAEMON" health --socket "$SOCK" > /dev/null 2>&1 && break
    sleep 0.1
done
"$DAEMON" load --socket "$SOCK" --quick --out "$WORK/BENCH_spill.json" > /dev/null
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
[ -S "$SOCK" ] || { echo "kill -9 should leave the socket file"; exit 1; }
[ -s "$SPILL" ] || { echo "spill file missing after crash"; exit 1; }

# Restart on the same (stale) socket and spill: the daemon must probe
# and unlink the dead socket, then rehydrate the memo from the spill.
"$DAEMON" serve --socket "$SOCK" --memo-spill "$SPILL" 2> "$WORK/daemon3.err" &
daemon_pid=$!
for _ in $(seq 1 100); do
    "$DAEMON" health --socket "$SOCK" > /dev/null 2>&1 && break
    sleep 0.1
done
"$DAEMON" health --socket "$SOCK" | tee "$WORK/health-restart.json"
python3 - "$WORK/health-restart.json" <<'EOF'
import json, sys
health = json.load(open(sys.argv[1]))["health"]
# No request has been served yet: entries can only come from the spill.
assert health["ready"] is True, health
assert health["spill_active"] is True, health
assert health["memo_entries"] > 0, health
EOF
"$DAEMON" load --socket "$SOCK" --quick --out "$WORK/BENCH_spill2.json" \
    | tee "$WORK/load-restart.txt"
grep -qE ' 0 errors' "$WORK/load-restart.txt" \
    || { echo "post-restart load saw errors"; exit 1; }
grep -qE ' [1-9][0-9]* memo hits' "$WORK/load-restart.txt" \
    || { echo "restart must replay from the rehydrated memo"; exit 1; }
"$DAEMON" shutdown --socket "$SOCK" > /dev/null
wait "$daemon_pid" || { echo "restarted daemon exited nonzero"; exit 1; }
daemon_pid=""

echo "serve-smoke: all checks passed"
