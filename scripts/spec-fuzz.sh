#!/usr/bin/env bash
# CI spec-fuzz: hammer a live release daemon with seeded untrusted
# scenario-spec requests and require a typed response for every case.
#
#   1. Deterministic generator self-checks: the SpecFuzzer replays
#      byte-identically from its seed and every generated case
#      classifies at the parser exactly as labelled.
#   2. Property layer: parse ∘ to_json is the identity, digests ignore
#      wire key order, distinct scenarios get distinct digests.
#   3. Live fuzz: NP_SPEC_FUZZ_CASES cases (default 1000, the
#      acceptance floor) against a real nanopowerd -- zero panics, zero
#      dropped connections, zero untyped errors, daemon ready after.
#      Runs twice with different seeds for breadth; any failure replays
#      from (seed, case index) alone.
set -euo pipefail
cd "$(dirname "$0")/.."

CASES="${NP_SPEC_FUZZ_CASES:-1000}"

echo "== 1. fuzzer determinism + parser classification =="
cargo test --release -p np-bench --lib chaos:: -q

echo "== 2. spec canonicalization properties =="
cargo test --release -p np-bench --test spec_fuzz -q \
    -- parse_of_canonical_form digest_

echo "== 3. live daemon fuzz: $CASES cases x 2 seeds =="
for seed in 1 20260809; do
    echo "-- seed $seed --"
    NP_SPEC_FUZZ_CASES="$CASES" NP_SPEC_FUZZ_SEED="$seed" \
        cargo test --release -p np-bench --test spec_fuzz \
        seeded_fuzz -- --nocapture
done

echo "spec-fuzz: all checks passed"
