#!/usr/bin/env bash
# Runs the perf harness (repro --bench) in release mode and leaves
# BENCH_grid.json at the repo root. The full run sweeps mesh sizes
# 33..1025, shard counts 1/2/4/8, and the PCG-vs-multigrid iteration
# comparison — budget a few minutes (the sequential PCG solves at
# 513/1025 dominate). Extra flags pass through, e.g.:
#   scripts/bench.sh --bench-quick
#   scripts/bench.sh --bench-out /tmp/bench.json
set -euo pipefail
cd "$(dirname "$0")/.."
ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "${ncpu}" -le 1 ]; then
    echo "warning: only ${ncpu} cpu online — parallel speedups will read ~1.0x" \
         "and are not comparable to a multi-core baseline (see BENCHMARKS.md)" >&2
fi
exec cargo run --release -p np-bench --bin repro -- --bench "$@"
