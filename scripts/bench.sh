#!/usr/bin/env bash
# Runs the perf harness (repro --bench) in release mode and leaves
# BENCH_grid.json at the repo root. Extra flags pass through, e.g.:
#   scripts/bench.sh --bench-quick
#   scripts/bench.sh --bench-out /tmp/bench.json
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -p np-bench --bin repro -- --bench "$@"
